//! Qubit-dependency DAG over a circuit's operations.
//!
//! QC IR has only data dependencies (§VI): operation *j* depends on the most
//! recent earlier operation touching each of *j*'s qubits. The DAG drives
//! the compiler's *earliest ready gate first* scheduling heuristic and the
//! logical-depth statistic of Table II's benchmarks.

use crate::circuit::Circuit;
use fixedbitset::FixedBitSet;

/// Dependency DAG of a [`Circuit`]: nodes are operation indices, edges point
/// from an operation to the operations that must wait for it.
///
/// # Example
///
/// ```
/// use qccd_circuit::{Circuit, DependencyDag, Qubit};
///
/// let mut c = Circuit::new("t", 3);
/// c.h(Qubit(0));          // 0
/// c.h(Qubit(1));          // 1: independent of 0
/// c.cx(Qubit(0), Qubit(1)); // 2: depends on 0 and 1
/// let dag = DependencyDag::new(&c);
/// assert_eq!(dag.predecessors(2), &[0, 1]);
/// assert_eq!(dag.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl DependencyDag {
    /// Builds the DAG by tracking the last operation per qubit.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits() as usize];

        for (i, op) in circuit.iter().enumerate() {
            for q in op.qubits() {
                if let Some(p) = last_on_qubit[q.index()] {
                    // A two-qubit gate may share both operands with the same
                    // predecessor; record the edge once.
                    if preds[i].last() != Some(&p) && !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on_qubit[q.index()] = Some(i);
            }
        }
        DependencyDag { preds, succs }
    }

    /// Number of nodes (operations).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` if the underlying circuit had no operations.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Direct predecessors of operation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of operation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Operations with no predecessors (ready at time zero).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// Logical depth: length of the longest dependency chain (in
    /// operations). Zero for an empty circuit.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.len()];
        let mut max = 0;
        // Operation indices are already a topological order (edges only go
        // forward in program order).
        for i in 0..self.len() {
            let l = self.preds[i].iter().map(|&p| level[p]).max().unwrap_or(0) + 1;
            level[i] = l;
            max = max.max(l);
        }
        max
    }

    /// Per-operation level (1-based longest-path depth). Useful for
    /// layer-oriented visualisation and tests.
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.len()];
        for i in 0..self.len() {
            level[i] = self.preds[i].iter().map(|&p| level[p]).max().unwrap_or(0) + 1;
        }
        level
    }

    /// Creates a ready-set tracker for list scheduling.
    pub fn ready_tracker(&self) -> ReadyTracker<'_> {
        let remaining: Vec<usize> = (0..self.len()).map(|i| self.preds[i].len()).collect();
        let mut ready = FixedBitSet::with_capacity(self.len());
        let mut ready_count = 0;
        for i in 0..self.len() {
            if self.preds[i].is_empty() {
                ready.insert(i);
                ready_count += 1;
            }
        }
        ReadyTracker {
            dag: self,
            remaining,
            ready,
            ready_count,
            scan_from: 0,
            completed: 0,
        }
    }
}

/// Incremental ready-set maintenance over a [`DependencyDag`].
///
/// The compiler repeatedly takes the earliest ready operation (smallest
/// program index among ready nodes — the paper's *earliest ready gate first*
/// heuristic) and marks it complete, releasing its successors.
///
/// The ready set is a bitset over operation indices plus a forward-only
/// scan cursor. The cursor is sound because the popped minimum is
/// monotone non-decreasing under the pop/complete protocol: completing
/// operation `i` can only release successors, and every successor has a
/// larger program index than `i`, so nothing below the last popped index
/// ever becomes ready again.
#[derive(Debug, Clone)]
pub struct ReadyTracker<'a> {
    dag: &'a DependencyDag,
    remaining: Vec<usize>,
    ready: FixedBitSet,
    ready_count: usize,
    /// Lower bound for the next minimum-bit scan.
    scan_from: usize,
    completed: usize,
}

impl<'a> ReadyTracker<'a> {
    /// Operations currently ready, in ascending program order.
    pub fn ready(&self) -> Vec<usize> {
        self.ready.ones().collect()
    }

    /// Pops the earliest (smallest-index) ready operation, if any.
    pub fn pop_earliest(&mut self) -> Option<usize> {
        if self.ready_count == 0 {
            return None;
        }
        let i = self
            .ready
            .min_one_from(self.scan_from)
            // qccd-lint: allow(engine-panic, panic-discipline) — the expect message documents a structural invariant; a violation is a bug, not an input error
            .expect("ready_count tracks set bits at or above the cursor");
        self.ready.remove(i);
        self.ready_count -= 1;
        self.scan_from = i;
        Some(i)
    }

    /// Marks operation `i` complete, releasing successors whose
    /// dependencies are all satisfied.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `i` still has unsatisfied dependencies; the
    /// caller must only complete operations previously obtained from the
    /// ready set.
    pub fn complete(&mut self, i: usize) {
        debug_assert_eq!(self.remaining[i], 0, "completing a non-ready operation");
        self.completed += 1;
        for &s in self.dag.successors(i) {
            self.remaining[s] -= 1;
            if self.remaining[s] == 0 {
                self.ready.insert(s);
                self.ready_count += 1;
                // Successors always sit above `i` in program order, so the
                // cursor stays valid; lower it defensively in case a caller
                // completes out of pop order (public API).
                self.scan_from = self.scan_from.min(s);
            }
        }
    }

    /// Number of operations completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// `true` when every operation has been completed.
    pub fn is_done(&self) -> bool {
        self.completed == self.dag.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Qubit;

    fn diamond() -> Circuit {
        let mut c = Circuit::new("d", 2);
        c.h(Qubit(0)); // 0
        c.h(Qubit(1)); // 1
        c.cx(Qubit(0), Qubit(1)); // 2 depends on 0,1
        c.measure(Qubit(0)); // 3 depends on 2
        c.measure(Qubit(1)); // 4 depends on 2
        c
    }

    #[test]
    fn edges_follow_last_use() {
        let dag = DependencyDag::new(&diamond());
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        assert_eq!(dag.predecessors(2), &[0, 1]);
        assert_eq!(dag.predecessors(3), &[2]);
        assert_eq!(dag.successors(2), &[3, 4]);
    }

    #[test]
    fn depth_of_diamond_is_three() {
        let dag = DependencyDag::new(&diamond());
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.levels(), vec![1, 1, 2, 3, 3]);
    }

    #[test]
    fn shared_predecessor_recorded_once() {
        let mut c = Circuit::new("t", 2);
        c.cx(Qubit(0), Qubit(1)); // 0
        c.cx(Qubit(0), Qubit(1)); // 1 depends on 0 via both qubits
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn ready_tracker_walks_whole_dag_in_program_order_for_chain() {
        let mut c = Circuit::new("t", 1);
        for _ in 0..5 {
            c.h(Qubit(0));
        }
        let dag = DependencyDag::new(&c);
        let mut tracker = dag.ready_tracker();
        let mut order = Vec::new();
        while let Some(i) = tracker.pop_earliest() {
            order.push(i);
            tracker.complete(i);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(tracker.is_done());
    }

    #[test]
    fn ready_tracker_prefers_earliest_among_parallel_roots() {
        let mut c = Circuit::new("t", 3);
        c.h(Qubit(2)); // 0
        c.h(Qubit(0)); // 1
        c.h(Qubit(1)); // 2
        let dag = DependencyDag::new(&c);
        let mut tracker = dag.ready_tracker();
        assert_eq!(tracker.ready(), vec![0, 1, 2]);
        assert_eq!(tracker.pop_earliest(), Some(0));
        tracker.complete(0);
        assert_eq!(tracker.pop_earliest(), Some(1));
    }

    #[test]
    fn empty_circuit_yields_empty_dag() {
        let dag = DependencyDag::new(&Circuit::new("e", 4));
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert!(dag.ready_tracker().pop_earliest().is_none());
    }

    #[test]
    fn barrier_orders_across_qubits() {
        let mut c = Circuit::new("t", 2);
        c.h(Qubit(0)); // 0
        c.barrier_all(); // 1
        c.h(Qubit(1)); // 2 must follow the barrier
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.predecessors(2), &[1]);
    }
}
