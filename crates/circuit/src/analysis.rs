//! Static circuit analysis: the statistics behind Table II.
//!
//! For each benchmark the paper reports qubit count, two-qubit gate count
//! and a qualitative *communication pattern*. [`CircuitStats`] computes
//! these (plus depth and interaction-distance percentiles) from any
//! [`Circuit`], and [`CommunicationPattern`] reproduces the qualitative
//! classification.

use crate::circuit::{Circuit, Operation};
use crate::dag::DependencyDag;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Qualitative communication pattern of a circuit, as in Table II.
///
/// The classification looks at the distribution of |i−j| over two-qubit
/// gates *in program-qubit index space*, which is the natural layout for
/// the line-mapped NISQ benchmarks the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommunicationPattern {
    /// Almost all interactions are between adjacent (or near-adjacent)
    /// program qubits — e.g. QAOA's hardware-efficient ansatz, Supremacy.
    NearestNeighbor,
    /// Interactions within a small neighbourhood — e.g. the ripple-carry
    /// Adder.
    ShortRange,
    /// A mix of short- and long-range interactions — e.g. SquareRoot, BV.
    ShortAndLongRange,
    /// Every distance occurs — e.g. QFT's all-to-all sequence.
    AllDistances,
}

impl fmt::Display for CommunicationPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommunicationPattern::NearestNeighbor => "nearest neighbor gates",
            CommunicationPattern::ShortRange => "short range gates",
            CommunicationPattern::ShortAndLongRange => "short and long-range gates",
            CommunicationPattern::AllDistances => "all distances",
        };
        f.write_str(s)
    }
}

/// Summary statistics of a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of program qubits.
    pub qubits: u32,
    /// Number of two-qubit gates.
    pub two_qubit_gates: usize,
    /// Number of single-qubit gates.
    pub one_qubit_gates: usize,
    /// Number of measurements.
    pub measurements: usize,
    /// Logical depth (longest dependency chain).
    pub depth: usize,
    /// Histogram of |i−j| over two-qubit gates; index 0 is distance 1.
    pub distance_histogram: Vec<usize>,
    /// Median two-qubit interaction distance (0 if no 2q gates).
    pub median_distance: usize,
    /// 95th-percentile interaction distance (0 if no 2q gates).
    pub p95_distance: usize,
    /// Maximum interaction distance (0 if no 2q gates).
    pub max_distance: usize,
    /// Qualitative communication pattern.
    pub pattern: CommunicationPattern,
}

impl CircuitStats {
    /// Analyzes `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut distances: Vec<usize> = Vec::new();
        for op in circuit.iter() {
            if let Operation::TwoQubit { a, b, .. } = op {
                distances.push(a.index().abs_diff(b.index()));
            }
        }
        distances.sort_unstable();
        let max_distance = distances.last().copied().unwrap_or(0);
        let mut histogram = vec![0usize; max_distance.max(1)];
        for &d in &distances {
            if d >= 1 {
                histogram[d - 1] += 1;
            }
        }
        let percentile = |p: f64| -> usize {
            if distances.is_empty() {
                0
            } else {
                let idx = ((distances.len() as f64 - 1.0) * p).round() as usize;
                distances[idx]
            }
        };
        let median_distance = percentile(0.5);
        let p95_distance = percentile(0.95);
        let pattern = classify(
            circuit.num_qubits(),
            median_distance,
            p95_distance,
            max_distance,
            &distances,
        );
        CircuitStats {
            name: circuit.name().to_owned(),
            qubits: circuit.num_qubits(),
            two_qubit_gates: distances.len(),
            one_qubit_gates: circuit.one_qubit_gate_count(),
            measurements: circuit.measure_count(),
            depth: DependencyDag::new(circuit).depth(),
            distance_histogram: histogram,
            median_distance,
            p95_distance,
            max_distance,
            pattern,
        }
    }
}

/// Classifies the communication pattern from distance percentiles.
///
/// Thresholds (fractions of the qubit count n):
/// * nearest-neighbour: p95 ≤ max(2, n/8) **and** at most two distinct
///   distances occur — regular lattice couplings (a line, or the two axes
///   of a row-major 2-D grid) produce exactly this signature;
/// * short-range: p95 ≤ n/4;
/// * all-distances: distances cover ≥ half of all possible values *and*
///   the circuit interacts a dense fraction (≥ ¼) of all qubit pairs —
///   this separates QFT's everybody-with-everybody pattern from
///   star-shaped circuits like BV that merely touch every distance once;
/// * otherwise: short-and-long-range.
fn classify(
    n: u32,
    _median: usize,
    p95: usize,
    max: usize,
    distances: &[usize],
) -> CommunicationPattern {
    let n = n as usize;
    if distances.is_empty() {
        return CommunicationPattern::NearestNeighbor;
    }
    let mut covered = vec![false; max + 1];
    for &d in distances {
        covered[d] = true;
    }
    let distinct = covered.iter().filter(|&&b| b).count();
    if p95 <= (n / 8).max(2) && distinct <= 2 {
        return CommunicationPattern::NearestNeighbor;
    }
    if p95 <= n / 4 {
        return CommunicationPattern::ShortRange;
    }
    if n > 1 && distinct * 2 >= n - 1 && distances.len() * 4 >= n * (n - 1) / 2 {
        CommunicationPattern::AllDistances
    } else {
        CommunicationPattern::ShortAndLongRange
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Qubit;

    #[test]
    fn nearest_neighbor_line_is_classified_nn() {
        let mut c = Circuit::new("line", 32);
        for layer in 0..4 {
            let _ = layer;
            for i in 0..31 {
                c.cx(Qubit(i), Qubit(i + 1));
            }
        }
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.pattern, CommunicationPattern::NearestNeighbor);
        assert_eq!(stats.median_distance, 1);
        assert_eq!(stats.max_distance, 1);
    }

    #[test]
    fn all_to_all_is_classified_all_distances() {
        let mut c = Circuit::new("a2a", 16);
        for i in 0..16u32 {
            for j in (i + 1)..16 {
                c.cz(Qubit(i), Qubit(j));
            }
        }
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.pattern, CommunicationPattern::AllDistances);
        assert_eq!(stats.max_distance, 15);
    }

    #[test]
    fn short_range_window_is_classified_short() {
        // Several distinct short distances: local but not lattice-regular.
        let mut c = Circuit::new("win", 64);
        for i in 0..56u32 {
            c.cx(Qubit(i), Qubit(i + 3 + i % 3));
        }
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.pattern, CommunicationPattern::ShortRange);
    }

    #[test]
    fn grid_signature_is_nearest_neighbor() {
        // Row-major 8×8 grid couplings: distances 1 and 8 only.
        let mut c = Circuit::new("grid", 64);
        for r in 0..8u32 {
            for col in 0..7u32 {
                c.cz(Qubit(r * 8 + col), Qubit(r * 8 + col + 1));
            }
        }
        for r in 0..7u32 {
            for col in 0..8u32 {
                c.cz(Qubit(r * 8 + col), Qubit((r + 1) * 8 + col));
            }
        }
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.pattern, CommunicationPattern::NearestNeighbor);
    }

    #[test]
    fn star_touching_every_distance_is_not_all_distances() {
        // BV-like: every distance occurs once, but only n-1 pairs interact.
        let mut c = Circuit::new("star", 64);
        for i in 0..63u32 {
            c.cx(Qubit(i), Qubit(63));
        }
        assert_eq!(
            CircuitStats::of(&c).pattern,
            CommunicationPattern::ShortAndLongRange
        );
    }

    #[test]
    fn mixed_star_is_short_and_long() {
        // Bernstein–Vazirani-like: everything targets one ancilla.
        let mut c = Circuit::new("star", 64);
        for i in 0..63u32 {
            c.cx(Qubit(i), Qubit(63));
        }
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.two_qubit_gates, 63);
        assert!(matches!(
            stats.pattern,
            CommunicationPattern::ShortAndLongRange | CommunicationPattern::AllDistances
        ));
    }

    #[test]
    fn histogram_counts_every_gate() {
        let mut c = Circuit::new("h", 8);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(0), Qubit(4));
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.distance_histogram[0], 2);
        assert_eq!(stats.distance_histogram[3], 1);
        assert_eq!(stats.distance_histogram.iter().sum::<usize>(), 3);
    }

    #[test]
    fn empty_circuit_has_zeroed_stats() {
        let stats = CircuitStats::of(&Circuit::new("e", 5));
        assert_eq!(stats.two_qubit_gates, 0);
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.max_distance, 0);
        assert_eq!(stats.pattern, CommunicationPattern::NearestNeighbor);
    }

    #[test]
    fn pattern_display_matches_paper_wording() {
        assert_eq!(
            CommunicationPattern::NearestNeighbor.to_string(),
            "nearest neighbor gates"
        );
        assert_eq!(
            CommunicationPattern::ShortAndLongRange.to_string(),
            "short and long-range gates"
        );
    }
}
