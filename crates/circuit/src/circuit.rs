//! The circuit container: an ordered list of operations on program qubits.
//!
//! Per §VI of the paper, QC IR has no control dependencies: loops are fully
//! unrolled and functions inlined, so a program is exactly a gate sequence
//! with data (qubit) dependencies. [`Circuit`] is that sequence.

use crate::gate::{OneQubitGate, TwoQubitGate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A program (logical) qubit index.
///
/// Program qubits are mapped onto hardware ions by the compiler; this
/// newtype keeps the two spaces statically distinct (`qccd-device` has the
/// corresponding `IonId`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Qubit(pub u32);

impl Qubit {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(v: u32) -> Self {
        Qubit(v)
    }
}

/// One instruction of the IR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operation {
    /// A single-qubit gate applied to `q`.
    OneQubit {
        /// The gate.
        gate: OneQubitGate,
        /// Target qubit.
        q: Qubit,
    },
    /// A two-qubit gate applied to `a` (control where relevant) and `b`.
    TwoQubit {
        /// The gate.
        gate: TwoQubitGate,
        /// First operand (control for `Cx`).
        a: Qubit,
        /// Second operand (target for `Cx`).
        b: Qubit,
    },
    /// Computational-basis measurement of `q`.
    Measure {
        /// The measured qubit.
        q: Qubit,
    },
    /// A scheduling fence over the listed qubits (OpenQASM `barrier`).
    Barrier {
        /// Qubits constrained by the fence.
        qs: Vec<Qubit>,
    },
}

impl Operation {
    /// The qubits this operation touches, in operand order.
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Operation::OneQubit { q, .. } | Operation::Measure { q } => vec![*q],
            Operation::TwoQubit { a, b, .. } => vec![*a, *b],
            Operation::Barrier { qs } => qs.clone(),
        }
    }

    /// `true` for two-qubit gate operations.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Operation::TwoQubit { .. })
    }

    /// `true` for measurement operations.
    pub fn is_measure(&self) -> bool {
        matches!(self, Operation::Measure { .. })
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::OneQubit { gate, q } => write!(f, "{gate} {q}"),
            Operation::TwoQubit { gate, a, b } => write!(f, "{gate} {a}, {b}"),
            Operation::Measure { q } => write!(f, "measure {q}"),
            Operation::Barrier { qs } => {
                f.write_str("barrier")?;
                for (i, q) in qs.iter().enumerate() {
                    if i == 0 {
                        write!(f, " {q}")?;
                    } else {
                        write!(f, ", {q}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Errors raised while constructing or validating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// An operation referenced a qubit index `found` outside `0..num_qubits`.
    QubitOutOfRange {
        /// The offending qubit index.
        found: u32,
        /// The circuit width.
        num_qubits: u32,
    },
    /// A two-qubit operation used the same qubit for both operands.
    DuplicateOperand {
        /// The repeated qubit.
        q: Qubit,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { found, num_qubits } => write!(
                f,
                "qubit index {found} out of range for circuit with {num_qubits} qubits"
            ),
            CircuitError::DuplicateOperand { q } => {
                write!(f, "two-qubit operation uses qubit {q} twice")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// An ordered quantum program over `num_qubits` program qubits.
///
/// The builder-style mutators (`h`, `cx`, …) validate their operands with
/// `debug_assert!`; use [`Circuit::validate`] for a full dynamic check (the
/// OpenQASM parser and the compiler front door both call it).
///
/// # Example
///
/// ```
/// use qccd_circuit::{Circuit, Qubit};
///
/// let mut c = Circuit::new("ghz3", 3);
/// c.h(Qubit(0));
/// c.cx(Qubit(0), Qubit(1));
/// c.cx(Qubit(1), Qubit(2));
/// c.measure_all();
/// assert_eq!(c.len(), 6);
/// assert!(c.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Circuit {
    name: String,
    num_qubits: u32,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit with the given name and width.
    pub fn new(name: impl Into<String>, num_qubits: u32) -> Self {
        Circuit {
            name: name.into(),
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// The circuit's name (used in reports and QASM headers).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of program qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation list.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates over operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// Appends a raw operation.
    pub fn push(&mut self, op: Operation) {
        debug_assert!(
            op.qubits().iter().all(|q| q.0 < self.num_qubits),
            "operation {op} references qubit outside 0..{}",
            self.num_qubits
        );
        self.ops.push(op);
    }

    /// Appends a single-qubit gate.
    pub fn one_qubit(&mut self, gate: OneQubitGate, q: Qubit) {
        self.push(Operation::OneQubit { gate, q });
    }

    /// Appends a two-qubit gate.
    pub fn two_qubit(&mut self, gate: TwoQubitGate, a: Qubit, b: Qubit) {
        debug_assert_ne!(a, b, "two-qubit gate operands must differ");
        self.push(Operation::TwoQubit { gate, a, b });
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: Qubit) {
        self.one_qubit(OneQubitGate::H, q);
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: Qubit) {
        self.one_qubit(OneQubitGate::X, q);
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: Qubit) {
        self.one_qubit(OneQubitGate::Z, q);
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, theta: f64, q: Qubit) {
        self.one_qubit(OneQubitGate::Rz(theta), q);
    }

    /// Appends an Rx rotation.
    pub fn rx(&mut self, theta: f64, q: Qubit) {
        self.one_qubit(OneQubitGate::Rx(theta), q);
    }

    /// Appends an Ry rotation.
    pub fn ry(&mut self, theta: f64, q: Qubit) {
        self.one_qubit(OneQubitGate::Ry(theta), q);
    }

    /// Appends a phase gate `diag(1, e^{iθ})`.
    pub fn phase(&mut self, theta: f64, q: Qubit) {
        self.one_qubit(OneQubitGate::Phase(theta), q);
    }

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: Qubit, t: Qubit) {
        self.two_qubit(TwoQubitGate::Cx, c, t);
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: Qubit, b: Qubit) {
        self.two_qubit(TwoQubitGate::Cz, a, b);
    }

    /// Appends a native MS (XX) gate.
    pub fn ms(&mut self, a: Qubit, b: Qubit) {
        self.two_qubit(TwoQubitGate::Ms, a, b);
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: Qubit, b: Qubit) {
        self.two_qubit(TwoQubitGate::Swap, a, b);
    }

    /// Appends a controlled-phase `CP(θ)` **decomposed into its standard
    /// 2-CNOT realisation** (Rz wrappers + 2 CX).
    ///
    /// Table II counts QFT's controlled-phases this way (64·63 = 4032
    /// two-qubit gates for 64 qubits), so the decomposition happens at IR
    /// construction time rather than in the compiler.
    pub fn cphase(&mut self, theta: f64, a: Qubit, b: Qubit) {
        self.rz(theta / 2.0, a);
        self.rz(theta / 2.0, b);
        self.cx(a, b);
        self.rz(-theta / 2.0, b);
        self.cx(a, b);
    }

    /// Appends a Toffoli (CCX) on controls `a`, `b` and target `t`,
    /// decomposed into the standard 6-CNOT + 1-qubit network.
    pub fn toffoli(&mut self, a: Qubit, b: Qubit, t: Qubit) {
        use OneQubitGate::{Tdg, H, T};
        self.one_qubit(H, t);
        self.cx(b, t);
        self.one_qubit(Tdg, t);
        self.cx(a, t);
        self.one_qubit(T, t);
        self.cx(b, t);
        self.one_qubit(Tdg, t);
        self.cx(a, t);
        self.one_qubit(T, b);
        self.one_qubit(T, t);
        self.cx(a, b);
        self.one_qubit(H, t);
        self.one_qubit(T, a);
        self.one_qubit(Tdg, b);
        self.cx(a, b);
    }

    /// Appends a measurement of `q`.
    pub fn measure(&mut self, q: Qubit) {
        self.push(Operation::Measure { q });
    }

    /// Measures every qubit, in index order.
    pub fn measure_all(&mut self) {
        for i in 0..self.num_qubits {
            self.measure(Qubit(i));
        }
    }

    /// Appends a barrier over all qubits.
    pub fn barrier_all(&mut self) {
        let qs = (0..self.num_qubits).map(Qubit).collect();
        self.push(Operation::Barrier { qs });
    }

    /// Total number of two-qubit gates (the paper's headline workload size).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_two_qubit()).count()
    }

    /// Total number of single-qubit gates.
    pub fn one_qubit_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Operation::OneQubit { .. }))
            .count()
    }

    /// Total number of measurement operations.
    pub fn measure_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_measure()).count()
    }

    /// Checks every operation's operands against the circuit width and
    /// rejects two-qubit gates with repeated operands.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] found, if any.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for op in &self.ops {
            for q in op.qubits() {
                if q.0 >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        found: q.0,
                        num_qubits: self.num_qubits,
                    });
                }
            }
            if let Operation::TwoQubit { a, b, .. } = op {
                if a == b {
                    return Err(CircuitError::DuplicateOperand { q: *a });
                }
            }
        }
        Ok(())
    }

    /// Program qubits in order of first use, the ordering used by the
    /// paper's greedy mapping heuristic (§VI). Qubits never used are
    /// appended afterwards in index order.
    pub fn qubits_by_first_use(&self) -> Vec<Qubit> {
        let n = self.num_qubits as usize;
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for op in &self.ops {
            for q in op.qubits() {
                if !seen[q.index()] {
                    seen[q.index()] = true;
                    order.push(q);
                }
            }
        }
        for (i, was_seen) in seen.iter().enumerate() {
            if !was_seen {
                order.push(Qubit(i as u32));
            }
        }
        order
    }
}

impl Extend<Operation> for Circuit {
    fn extend<T: IntoIterator<Item = Operation>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit {} ({} qubits, {} ops)",
            self.name,
            self.num_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_append_in_order() {
        let mut c = Circuit::new("t", 2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.measure(Qubit(1));
        assert_eq!(c.len(), 3);
        assert!(matches!(c.operations()[0], Operation::OneQubit { .. }));
        assert!(c.operations()[1].is_two_qubit());
        assert!(c.operations()[2].is_measure());
    }

    #[test]
    fn counts_are_consistent() {
        let mut c = Circuit::new("t", 3);
        c.h(Qubit(0));
        c.x(Qubit(1));
        c.cx(Qubit(0), Qubit(1));
        c.cz(Qubit(1), Qubit(2));
        c.measure_all();
        assert_eq!(c.one_qubit_gate_count(), 2);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.measure_count(), 3);
    }

    #[test]
    fn cphase_decomposes_to_two_cnots() {
        let mut c = Circuit::new("t", 2);
        c.cphase(std::f64::consts::FRAC_PI_2, Qubit(0), Qubit(1));
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.one_qubit_gate_count(), 3);
    }

    #[test]
    fn toffoli_decomposes_to_six_cnots() {
        let mut c = Circuit::new("t", 3);
        c.toffoli(Qubit(0), Qubit(1), Qubit(2));
        assert_eq!(c.two_qubit_gate_count(), 6);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut c = Circuit::new("t", 1);
        c.ops.push(Operation::Measure { q: Qubit(3) });
        assert_eq!(
            c.validate(),
            Err(CircuitError::QubitOutOfRange {
                found: 3,
                num_qubits: 1
            })
        );
    }

    #[test]
    fn validate_rejects_duplicate_operands() {
        let mut c = Circuit::new("t", 2);
        c.ops.push(Operation::TwoQubit {
            gate: TwoQubitGate::Cx,
            a: Qubit(1),
            b: Qubit(1),
        });
        assert_eq!(
            c.validate(),
            Err(CircuitError::DuplicateOperand { q: Qubit(1) })
        );
    }

    #[test]
    fn first_use_order_tracks_operations_then_unused() {
        let mut c = Circuit::new("t", 4);
        c.cx(Qubit(2), Qubit(0));
        c.h(Qubit(1));
        let order = c.qubits_by_first_use();
        assert_eq!(order, vec![Qubit(2), Qubit(0), Qubit(1), Qubit(3)]);
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let e = CircuitError::QubitOutOfRange {
            found: 9,
            num_qubits: 4,
        };
        let s = e.to_string();
        assert!(s.contains("out of range"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn display_lists_each_operation() {
        let mut c = Circuit::new("bell", 2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        let text = c.to_string();
        assert!(text.contains("h q0"));
        assert!(text.contains("cx q0, q1"));
    }
}
