//! The resource-timeline simulation engine.

use crate::error::SimError;
use crate::report::{ErrorTotals, SimReport, TimeBreakdown};
use crate::spans::SpanSet;
use qccd_compiler::{Executable, Inst, MachineState, Placement};
use qccd_device::{Device, IonId, JunctionKind, Leg, TrapId};
use qccd_physics::PhysicalModel;

/// Simulates `exe` on `device` under `model`, producing timing, fidelity
/// and device-level metrics.
///
/// # Errors
///
/// Returns a [`SimError`] if the executable is inconsistent with the
/// device (unknown ids) or internally malformed (split of a non-end ion,
/// gate on in-flight ions, …). [`qccd_compiler::compile()`] is designed
/// to emit executables that pass these checks for the device it compiled
/// against, but the simulator re-validates every stream: hand-authored
/// executables, device/executable mismatches, or compiler bugs all
/// surface here rather than as silent corruption. Each [`SimError`]
/// variant has a negative-path unit test pinning the condition that
/// raises it.
pub fn simulate(
    exe: &Executable,
    device: &Device,
    model: &PhysicalModel,
) -> Result<SimReport, SimError> {
    validate(exe, device)?;
    let placement = Placement::from_chains(exe.initial_chains().to_vec());
    let mut engine = Engine {
        device,
        model,
        st: MachineState::new(&placement),
        ion_ready: vec![0.0; exe.num_ions() as usize],
        trap_ready: vec![0.0; device.trap_count()],
        seg_ready: vec![0.0; device.segment_count()],
        junc_ready: vec![0.0; device.junction_count()],
        trap_energy: vec![0.0; device.trap_count()],
        trap_peak: vec![0.0; device.trap_count()],
        flight_energy: vec![0.0; exe.num_ions() as usize],
        log_fidelity: 0.0,
        errors: ErrorTotals::default(),
        ms_executions: 0,
        ms_background_sum: 0.0,
        ms_motional_sum: 0.0,
        gate_spans: SpanSet::new(),
        comm_spans: SpanSet::new(),
        gate_busy: 0.0,
        shuttle_busy: 0.0,
        shuttle_wait: 0.0,
        makespan: 0.0,
    };

    for inst in exe.instructions() {
        engine.step(inst)?;
    }

    let compute_us = engine.gate_spans.union_length();
    let communication_us = engine.comm_spans.union_length_excluding(&engine.gate_spans);
    Ok(SimReport {
        name: exe.name().to_owned(),
        total_time_us: engine.makespan,
        log_fidelity: engine.log_fidelity,
        counts: exe.counts(),
        peak_motional_energy: engine.trap_peak.iter().copied().fold(0.0, f64::max),
        trap_peak_energy: engine.trap_peak,
        trap_final_energy: engine.trap_energy,
        ms_executions: engine.ms_executions,
        ms_background_error_sum: engine.ms_background_sum,
        ms_motional_error_sum: engine.ms_motional_sum,
        errors: engine.errors,
        time: TimeBreakdown {
            compute_us,
            communication_us,
            gate_busy_us: engine.gate_busy,
            shuttle_busy_us: engine.shuttle_busy,
            shuttle_wait_us: engine.shuttle_wait,
        },
    })
}

/// Structural validation of the executable against the device. Shared by
/// both kernels (legacy and [`crate::des`]) so they reject identical
/// streams with identical errors.
pub(crate) fn validate(exe: &Executable, device: &Device) -> Result<(), SimError> {
    if exe.initial_chains().len() != device.trap_count() {
        return Err(SimError::UnknownTrap(TrapId(
            exe.initial_chains().len() as u32 - 1,
        )));
    }
    let n = exe.num_ions();
    let mut seen = vec![false; n as usize];
    for chain in exe.initial_chains() {
        for &ion in chain {
            if ion.0 >= n || seen[ion.index()] {
                return Err(SimError::UnknownIon(ion));
            }
            seen[ion.index()] = true;
        }
    }
    for inst in exe.instructions() {
        for ion in inst.ions() {
            if ion.0 >= n {
                return Err(SimError::UnknownIon(ion));
            }
        }
        match inst {
            Inst::Split { trap, .. } | Inst::Merge { trap, .. }
                if trap.index() >= device.trap_count() =>
            {
                return Err(SimError::UnknownTrap(*trap));
            }
            Inst::Move { leg, .. } => {
                for s in &leg.segments {
                    if s.index() >= device.segment_count() {
                        return Err(SimError::UnknownTrap(leg.to));
                    }
                }
                for j in &leg.junctions {
                    if j.index() >= device.junction_count() {
                        return Err(SimError::UnknownTrap(leg.to));
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

struct Engine<'a> {
    device: &'a Device,
    model: &'a PhysicalModel,
    st: MachineState,
    ion_ready: Vec<f64>,
    trap_ready: Vec<f64>,
    seg_ready: Vec<f64>,
    junc_ready: Vec<f64>,
    trap_energy: Vec<f64>,
    trap_peak: Vec<f64>,
    flight_energy: Vec<f64>,
    log_fidelity: f64,
    errors: ErrorTotals,
    ms_executions: usize,
    ms_background_sum: f64,
    ms_motional_sum: f64,
    gate_spans: SpanSet,
    comm_spans: SpanSet,
    gate_busy: f64,
    shuttle_busy: f64,
    shuttle_wait: f64,
    makespan: f64,
}

/// Folds one operation's error probability into the running
/// log-fidelity. Shared by both kernels so the accumulation arithmetic
/// (clamp, `-inf` on certain failure, `ln_1p` form) cannot drift
/// between them.
pub(crate) fn charge(log_fidelity: &mut f64, err: f64) {
    let err = err.clamp(0.0, 1.0);
    if err >= 1.0 {
        *log_fidelity = f64::NEG_INFINITY;
    } else {
        *log_fidelity += (1.0 - err).ln_1p_workaround();
    }
}

impl Engine<'_> {
    fn charge_error(&mut self, err: f64) {
        charge(&mut self.log_fidelity, err);
    }

    fn bump_trap_energy(&mut self, trap: TrapId, energy: f64) {
        self.trap_energy[trap.index()] = energy;
        let nbar = energy / self.st.chain_len(trap).max(1) as f64;
        if nbar > self.trap_peak[trap.index()] {
            self.trap_peak[trap.index()] = nbar;
        }
    }

    fn located_trap(&self, ion: IonId) -> Result<TrapId, SimError> {
        self.st.trap_of(ion).ok_or(SimError::IonInFlight(ion))
    }

    /// Per-mode motional occupation n̄ of the chain in `trap`: the
    /// accumulated energy spread over the chain's motional modes (one per
    /// ion), n̄ = E/N. This is the n̄ entering eq. (1) and the Fig. 6f
    /// metric.
    fn nbar(&self, trap: TrapId) -> f64 {
        let n = self.st.chain_len(trap).max(1) as f64;
        self.trap_energy[trap.index()] / n
    }

    /// Executes one MS interaction (shared by program gates and reorder
    /// swaps); returns its duration and total error.
    fn ms_interaction(&mut self, a: IonId, b: IonId, trap: TrapId) -> (f64, f64) {
        let distance = self.st.distance(a, b).max(1);
        let chain_len = self.st.chain_len(trap) as u32;
        let tau = self.model.two_qubit_time(distance, chain_len);
        let breakdown = self
            .model
            .fidelity
            .two_qubit_error(tau, chain_len, self.nbar(trap));
        self.ms_executions += 1;
        self.ms_background_sum += breakdown.background;
        self.ms_motional_sum += breakdown.motional;
        self.charge_error(breakdown.total());
        (tau, breakdown.total())
    }

    fn step(&mut self, inst: &Inst) -> Result<(), SimError> {
        match inst {
            Inst::OneQubit { ion, .. } => {
                let trap = self.located_trap(*ion)?;
                let start = self.ion_ready[ion.index()].max(self.trap_ready[trap.index()]);
                let end = start + self.model.one_qubit_time;
                self.ion_ready[ion.index()] = end;
                self.trap_ready[trap.index()] = end;
                self.charge_error(self.model.fidelity.one_qubit_error);
                self.errors.one_qubit += self.model.fidelity.one_qubit_error;
                self.gate_spans.add(start, end);
                self.gate_busy += end - start;
                self.makespan = self.makespan.max(end);
            }
            Inst::Ms { a, b } => {
                let trap = self.located_trap(*a)?;
                if self.st.trap_of(*b) != Some(trap) {
                    return Err(SimError::NotColocated(*a, *b));
                }
                let start = self.ion_ready[a.index()]
                    .max(self.ion_ready[b.index()])
                    .max(self.trap_ready[trap.index()]);
                let (tau, err) = self.ms_interaction(*a, *b, trap);
                self.errors.two_qubit += err;
                let end = start + tau;
                self.ion_ready[a.index()] = end;
                self.ion_ready[b.index()] = end;
                self.trap_ready[trap.index()] = end;
                self.gate_spans.add(start, end);
                self.gate_busy += end - start;
                self.makespan = self.makespan.max(end);
            }
            Inst::SwapGate { a, b } => {
                let trap = self.located_trap(*a)?;
                if self.st.trap_of(*b) != Some(trap) {
                    return Err(SimError::NotColocated(*a, *b));
                }
                let start = self.ion_ready[a.index()]
                    .max(self.ion_ready[b.index()])
                    .max(self.trap_ready[trap.index()]);
                // 3 MS gates plus the 4 single-qubit corrections (§IV-C).
                let mut tau = 0.0;
                let mut swap_err = 0.0;
                for _ in 0..3 {
                    let (t, e) = self.ms_interaction(*a, *b, trap);
                    tau += t;
                    swap_err += e;
                }
                for _ in 0..qccd_compiler::lowering::WRAPPERS_PER_CX {
                    tau += self.model.one_qubit_time;
                    self.charge_error(self.model.fidelity.one_qubit_error);
                    swap_err += self.model.fidelity.one_qubit_error;
                }
                self.errors.swap += swap_err;
                let end = start + tau;
                self.ion_ready[a.index()] = end;
                self.ion_ready[b.index()] = end;
                self.trap_ready[trap.index()] = end;
                self.st.swap_states(*a, *b);
                self.gate_spans.add(start, end);
                self.gate_busy += end - start;
                self.makespan = self.makespan.max(end);
            }
            Inst::IonSwap { a, b } => {
                let trap = self.located_trap(*a)?;
                if self.st.trap_of(*b) != Some(trap) {
                    return Err(SimError::NotColocated(*a, *b));
                }
                if self.st.distance(*a, *b) != 1 {
                    return Err(SimError::NotAdjacent(*a, *b));
                }
                let n = self.st.chain_len(trap) as u32;
                let heating = &self.model.heating;
                let (tau, new_energy) = if n > 2 {
                    // Split the pair off, rotate it, merge it back.
                    let (pair, rest) = heating.split(self.trap_energy[trap.index()], 2, n - 2);
                    let pair = pair + heating.k1; // rotation agitation
                    (
                        self.model.shuttle.ion_swap_time(),
                        heating.merge(pair, rest, n),
                    )
                } else {
                    (
                        self.model.shuttle.ion_rotation,
                        self.trap_energy[trap.index()] + heating.k1,
                    )
                };
                let start = self.ion_ready[a.index()]
                    .max(self.ion_ready[b.index()])
                    .max(self.trap_ready[trap.index()]);
                let end = start + tau;
                self.ion_ready[a.index()] = end;
                self.ion_ready[b.index()] = end;
                self.trap_ready[trap.index()] = end;
                self.bump_trap_energy(trap, new_energy);
                self.st.swap_positions(*a, *b);
                self.comm_spans.add(start, end);
                self.shuttle_busy += end - start;
                self.makespan = self.makespan.max(end);
            }
            Inst::Split { ion, trap, side } => {
                if self.st.trap_of(*ion) != Some(*trap) {
                    return Err(SimError::SplitNotAtEnd(*ion, *trap));
                }
                if self.st.end_ion(*trap, *side) != Some(*ion) {
                    return Err(SimError::SplitNotAtEnd(*ion, *trap));
                }
                let n = self.st.chain_len(*trap) as u32;
                let start = self.ion_ready[ion.index()].max(self.trap_ready[trap.index()]);
                let end = start + self.model.shuttle.split;
                let heating = &self.model.heating;
                let (e_ion, e_rest) = if n > 1 {
                    heating.split(self.trap_energy[trap.index()], 1, n - 1)
                } else {
                    // Splitting the last ion empties the trap.
                    (self.trap_energy[trap.index()] + heating.k1, 0.0)
                };
                self.flight_energy[ion.index()] = e_ion;
                self.st.remove_end(*ion, *trap, *side);
                self.bump_trap_energy(*trap, e_rest);
                self.ion_ready[ion.index()] = end;
                self.trap_ready[trap.index()] = end;
                self.comm_spans.add(start, end);
                self.shuttle_busy += end - start;
                self.makespan = self.makespan.max(end);
            }
            Inst::Move { ion, leg } => {
                if self.st.trap_of(*ion).is_some() {
                    return Err(SimError::IonNotInFlight(*ion));
                }
                let (mut y, mut x) = (0u32, 0u32);
                for j in &leg.junctions {
                    match self.device.junction(*j).kind() {
                        JunctionKind::Y => y += 1,
                        JunctionKind::X => x += 1,
                    }
                }
                let tau = self.model.shuttle.move_time(leg.length_units, y, x);
                let resource_ready = self.path_ready(leg);
                let ready = self.ion_ready[ion.index()];
                let start = ready.max(resource_ready);
                self.shuttle_wait += (resource_ready - ready).max(0.0);
                let end = start + tau;
                self.set_path_ready(leg, end);
                self.flight_energy[ion.index()] += self
                    .model
                    .heating
                    .move_energy(leg.length_units, leg.junctions.len() as u32);
                self.ion_ready[ion.index()] = end;
                self.comm_spans.add(start, end);
                self.shuttle_busy += end - start;
                self.makespan = self.makespan.max(end);
            }
            Inst::Merge { ion, trap, side } => {
                if self.st.trap_of(*ion).is_some() {
                    return Err(SimError::IonNotInFlight(*ion));
                }
                let start = self.ion_ready[ion.index()].max(self.trap_ready[trap.index()]);
                let end = start + self.model.shuttle.merge;
                let n_result = self.st.chain_len(*trap) as u32 + 1;
                let merged = self.model.heating.merge(
                    self.trap_energy[trap.index()],
                    self.flight_energy[ion.index()],
                    n_result,
                );
                self.flight_energy[ion.index()] = 0.0;
                self.st.insert_end(*ion, *trap, *side);
                self.bump_trap_energy(*trap, merged);
                self.ion_ready[ion.index()] = end;
                self.trap_ready[trap.index()] = end;
                self.comm_spans.add(start, end);
                self.shuttle_busy += end - start;
                self.makespan = self.makespan.max(end);
            }
            Inst::Measure { ion } => {
                let trap = self.located_trap(*ion)?;
                let start = self.ion_ready[ion.index()].max(self.trap_ready[trap.index()]);
                let end = start + self.model.measure_time;
                self.ion_ready[ion.index()] = end;
                self.trap_ready[trap.index()] = end;
                self.charge_error(self.model.fidelity.measure_error);
                self.errors.measure += self.model.fidelity.measure_error;
                self.gate_spans.add(start, end);
                self.gate_busy += end - start;
                self.makespan = self.makespan.max(end);
            }
        }
        Ok(())
    }

    fn path_ready(&self, leg: &Leg) -> f64 {
        let mut t: f64 = 0.0;
        for s in &leg.segments {
            t = t.max(self.seg_ready[s.index()]);
        }
        for j in &leg.junctions {
            t = t.max(self.junc_ready[j.index()]);
        }
        t
    }

    fn set_path_ready(&mut self, leg: &Leg, end: f64) {
        for s in &leg.segments {
            self.seg_ready[s.index()] = end;
        }
        for j in &leg.junctions {
            self.junc_ready[j.index()] = end;
        }
    }
}

/// `ln(1 - e)` helper with the accuracy-preserving form for tiny errors.
trait Ln1pWorkaround {
    fn ln_1p_workaround(self) -> f64;
}

impl Ln1pWorkaround for f64 {
    /// `self` is already `1 - err`; use `ln_1p(-err)` for small errors to
    /// avoid catastrophic cancellation.
    fn ln_1p_workaround(self) -> f64 {
        let err = 1.0 - self;
        (-err).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{generators, Circuit, Qubit};
    use qccd_compiler::{compile, CompilerConfig, ReorderMethod};
    use qccd_device::presets;
    use qccd_device::Side;
    use qccd_physics::GateImpl;

    fn run(
        circuit: &Circuit,
        device: &Device,
        model: &PhysicalModel,
        config: &CompilerConfig,
    ) -> SimReport {
        let exe = compile(circuit, device, config).expect("compiles");
        simulate(&exe, device, model).expect("simulates")
    }

    #[test]
    fn bell_pair_timing_is_exact() {
        // h(5) + ry(5) + ms(100, FM floor) + rx/rx/ry(15) + 2 serial
        // measures (200) = 325 µs.
        let mut c = Circuit::new("bell", 2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.measure_all();
        let r = run(
            &c,
            &presets::l6(20),
            &PhysicalModel::default(),
            &CompilerConfig::default(),
        );
        assert!(
            (r.total_time_us - 325.0).abs() < 1e-9,
            "got {}",
            r.total_time_us
        );
        assert!(r.fidelity() > 0.99);
        assert_eq!(r.peak_motional_energy, 0.0);
    }

    #[test]
    fn parallel_traps_overlap_in_time() {
        // Two independent gate pairs in different traps: makespan should be
        // far below the serial sum.
        let mut c = Circuit::new("par", 40);
        for i in 0..40 {
            c.h(Qubit(i));
        }
        let r = run(
            &c,
            &presets::l6(12),
            &PhysicalModel::default(),
            &CompilerConfig::default(),
        );
        // 40 H gates of 5 µs over 4 occupied traps: ≥ 10 gates serial per
        // trap → exactly 50 µs if evenly spread.
        assert!(r.total_time_us < 40.0 * 5.0);
        assert!(r.total_time_us >= 50.0 - 1e-9);
    }

    #[test]
    fn cross_trap_gate_heats_chains() {
        let mut c = Circuit::new("x", 40);
        for i in 0..40 {
            c.h(Qubit(i));
        }
        c.cx(Qubit(0), Qubit(39));
        let r = run(
            &c,
            &presets::l6(12),
            &PhysicalModel::default(),
            &CompilerConfig::default(),
        );
        assert!(r.peak_motional_energy > 0.0);
        assert!(r.counts.splits > 0);
        assert!(r.time.shuttle_busy_us > 0.0);
    }

    #[test]
    fn is_reordering_heats_more_than_gs() {
        let mut c = Circuit::new("x", 40);
        for i in 0..40 {
            c.h(Qubit(i));
        }
        c.cx(Qubit(39), Qubit(0));
        let d = presets::l6(12);
        let m = PhysicalModel::default();
        let gs = run(
            &c,
            &d,
            &m,
            &CompilerConfig::with_reorder(ReorderMethod::GateSwap),
        );
        let is = run(
            &c,
            &d,
            &m,
            &CompilerConfig::with_reorder(ReorderMethod::IonSwap),
        );
        assert!(
            is.peak_motional_energy > gs.peak_motional_energy,
            "IS {} vs GS {}",
            is.peak_motional_energy,
            gs.peak_motional_energy
        );
    }

    #[test]
    fn congestion_produces_wait_time() {
        // Many long-range gates force shuttles through the same linear
        // segments; some must queue.
        let c = generators::random_circuit(40, 120, 0.8, 9);
        let r = run(
            &c,
            &presets::l6(12),
            &PhysicalModel::default(),
            &CompilerConfig::default(),
        );
        assert!(r.time.shuttle_wait_us >= 0.0);
        // With 96 two-qubit gates on 4+ traps there is essentially always
        // contention; allow zero but record the metric exists.
        assert!(r.time.shuttle_busy_us > 0.0);
    }

    #[test]
    fn faster_gate_impl_reduces_makespan_for_short_range() {
        let c = generators::qaoa(30, 2, 3);
        let d = presets::l6(10);
        let cfg = CompilerConfig::default();
        let am2 = run(&c, &d, &PhysicalModel::with_gate(GateImpl::Am2), &cfg);
        let pm = run(&c, &d, &PhysicalModel::with_gate(GateImpl::Pm), &cfg);
        assert!(am2.total_time_us < pm.total_time_us);
    }

    #[test]
    fn fidelity_decomposition_matches_log_fidelity() {
        let c = generators::random_circuit(20, 100, 0.3, 4);
        let r = run(
            &c,
            &presets::l6(10),
            &PhysicalModel::default(),
            &CompilerConfig::default(),
        );
        // Σ per-class errors should approximate −log fidelity for small
        // errors.
        let total_err = r.errors.total();
        assert!(
            (total_err + r.log_fidelity).abs() < 0.05 * total_err.max(1e-9) + 1e-6,
            "errors {total_err} vs -logF {}",
            -r.log_fidelity
        );
    }

    #[test]
    fn compute_plus_comm_bounded_by_makespan() {
        let c = generators::random_circuit(30, 200, 0.5, 5);
        let r = run(
            &c,
            &presets::g2x3(10),
            &PhysicalModel::default(),
            &CompilerConfig::default(),
        );
        assert!(r.time.compute_us + r.time.communication_us <= r.total_time_us + 1e-6);
        assert!(r.time.compute_us > 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let c = generators::random_circuit(24, 150, 0.4, 6);
        let d = presets::g2x3(10);
        let exe = compile(&c, &d, &CompilerConfig::default()).unwrap();
        let a = simulate(&exe, &d, &PhysicalModel::default()).unwrap();
        let b = simulate(&exe, &d, &PhysicalModel::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_split_is_rejected() {
        // Hand-build an executable splitting a mid-chain ion.
        let exe = Executable::new(
            "bad".into(),
            3,
            vec![
                vec![IonId(0), IonId(1), IonId(2)],
                vec![],
                vec![],
                vec![],
                vec![],
                vec![],
            ],
            vec![Inst::Split {
                ion: IonId(1),
                trap: TrapId(0),
                side: Side::Right,
            }],
            vec![0, 1, 2],
        );
        let d = presets::l6(10);
        let err = simulate(&exe, &d, &PhysicalModel::default()).unwrap_err();
        assert!(matches!(err, SimError::SplitNotAtEnd(..)));
    }

    #[test]
    fn gate_on_separated_ions_is_rejected() {
        let exe = Executable::new(
            "bad".into(),
            2,
            vec![
                vec![IonId(0)],
                vec![IonId(1)],
                vec![],
                vec![],
                vec![],
                vec![],
            ],
            vec![Inst::Ms {
                a: IonId(0),
                b: IonId(1),
            }],
            vec![0, 1],
        );
        let d = presets::l6(10);
        let err = simulate(&exe, &d, &PhysicalModel::default()).unwrap_err();
        assert_eq!(err, SimError::NotColocated(IonId(0), IonId(1)));
    }

    #[test]
    fn mismatched_device_is_rejected() {
        let mut c = Circuit::new("t", 4);
        c.cx(Qubit(0), Qubit(3));
        let d6 = presets::l6(10);
        let exe = compile(&c, &d6, &CompilerConfig::default()).unwrap();
        let d2 = presets::linear(2, 10, 4);
        assert!(simulate(&exe, &d2, &PhysicalModel::default()).is_err());
    }

    // ------------------------------------------------------------------
    // Negative paths: every SimError variant has a pinned raising
    // condition, and both kernels reject the stream with the identical
    // error.
    // ------------------------------------------------------------------

    /// A hand-built (usually malformed) executable on `num_ions` ions.
    fn exe_on(num_ions: u32, chains: Vec<Vec<IonId>>, insts: Vec<Inst>) -> Executable {
        let final_map = (0..num_ions).collect();
        Executable::new("bad".into(), num_ions, chains, insts, final_map)
    }

    /// All ions in trap 0 of a 6-trap device.
    fn chains_in_trap0(num_ions: u32) -> Vec<Vec<IonId>> {
        let mut chains = vec![vec![]; 6];
        chains[0] = (0..num_ions).map(IonId).collect();
        chains
    }

    /// Both kernels must reject `exe` with exactly `want`.
    fn assert_both_kernels_reject(exe: &Executable, want: SimError) {
        let d = presets::l6(10);
        let m = PhysicalModel::default();
        assert_eq!(simulate(exe, &d, &m).unwrap_err(), want, "legacy kernel");
        assert_eq!(
            crate::simulate_des(exe, &d, &m).unwrap_err(),
            want,
            "des kernel"
        );
    }

    #[test]
    fn unknown_trap_when_chain_table_mismatches_device() {
        // 4 chains against the 6-trap L6 device.
        let exe = exe_on(1, vec![vec![IonId(0)], vec![], vec![], vec![]], vec![]);
        assert_both_kernels_reject(&exe, SimError::UnknownTrap(TrapId(3)));
    }

    #[test]
    fn unknown_trap_when_split_names_a_missing_trap() {
        let exe = exe_on(
            1,
            chains_in_trap0(1),
            vec![Inst::Split {
                ion: IonId(0),
                trap: TrapId(99),
                side: Side::Right,
            }],
        );
        assert_both_kernels_reject(&exe, SimError::UnknownTrap(TrapId(99)));
    }

    #[test]
    fn unknown_ion_when_chain_exceeds_ion_count() {
        let mut chains = chains_in_trap0(2);
        chains[1] = vec![IonId(7)]; // only ions 0..2 exist
        let exe = exe_on(2, chains, vec![]);
        assert_both_kernels_reject(&exe, SimError::UnknownIon(IonId(7)));
    }

    #[test]
    fn unknown_ion_when_chains_repeat_an_ion() {
        let mut chains = chains_in_trap0(2);
        chains[1] = vec![IonId(1)]; // ion 1 already placed in trap 0
        let exe = exe_on(2, chains, vec![]);
        assert_both_kernels_reject(&exe, SimError::UnknownIon(IonId(1)));
    }

    #[test]
    fn unknown_ion_when_instruction_names_a_missing_ion() {
        let exe = exe_on(1, chains_in_trap0(1), vec![Inst::Measure { ion: IonId(3) }]);
        assert_both_kernels_reject(&exe, SimError::UnknownIon(IonId(3)));
    }

    #[test]
    fn ion_in_flight_when_gating_a_split_ion() {
        // Split ion 1 off, then gate it without merging it first.
        let exe = exe_on(
            2,
            chains_in_trap0(2),
            vec![
                Inst::Split {
                    ion: IonId(1),
                    trap: TrapId(0),
                    side: Side::Right,
                },
                Inst::OneQubit {
                    gate: qccd_circuit::OneQubitGate::H,
                    ion: IonId(1),
                },
            ],
        );
        assert_both_kernels_reject(&exe, SimError::IonInFlight(IonId(1)));
    }

    #[test]
    fn not_colocated_when_ms_spans_traps() {
        let mut chains = chains_in_trap0(1);
        chains[1] = vec![IonId(1)];
        let exe = exe_on(
            2,
            chains,
            vec![Inst::Ms {
                a: IonId(0),
                b: IonId(1),
            }],
        );
        assert_both_kernels_reject(&exe, SimError::NotColocated(IonId(0), IonId(1)));
    }

    #[test]
    fn not_adjacent_when_ion_swap_skips_a_neighbour() {
        // Chain [0, 1, 2]: swapping 0 and 2 crosses ion 1.
        let exe = exe_on(
            3,
            chains_in_trap0(3),
            vec![Inst::IonSwap {
                a: IonId(0),
                b: IonId(2),
            }],
        );
        assert_both_kernels_reject(&exe, SimError::NotAdjacent(IonId(0), IonId(2)));
    }

    #[test]
    fn split_not_at_end_for_a_mid_chain_ion() {
        let exe = exe_on(
            3,
            chains_in_trap0(3),
            vec![Inst::Split {
                ion: IonId(1),
                trap: TrapId(0),
                side: Side::Right,
            }],
        );
        assert_both_kernels_reject(&exe, SimError::SplitNotAtEnd(IonId(1), TrapId(0)));
    }

    #[test]
    fn split_not_at_end_when_trap_disagrees_with_placement() {
        // Ion 0 ends trap 0's chain, but the split names trap 1.
        let exe = exe_on(
            1,
            chains_in_trap0(1),
            vec![Inst::Split {
                ion: IonId(0),
                trap: TrapId(1),
                side: Side::Right,
            }],
        );
        assert_both_kernels_reject(&exe, SimError::SplitNotAtEnd(IonId(0), TrapId(1)));
    }

    #[test]
    fn ion_not_in_flight_when_merging_a_trapped_ion() {
        let exe = exe_on(
            2,
            chains_in_trap0(2),
            vec![Inst::Merge {
                ion: IonId(0),
                trap: TrapId(1),
                side: Side::Left,
            }],
        );
        assert_both_kernels_reject(&exe, SimError::IonNotInFlight(IonId(0)));
    }

    #[test]
    fn ion_not_in_flight_when_moving_a_trapped_ion() {
        let d = presets::l6(10);
        let leg = d.route(TrapId(0), TrapId(1)).unwrap().legs()[0].clone();
        let exe = exe_on(
            1,
            chains_in_trap0(1),
            vec![Inst::Move { ion: IonId(0), leg }],
        );
        assert_both_kernels_reject(&exe, SimError::IonNotInFlight(IonId(0)));
    }
}
