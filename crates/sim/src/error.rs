//! Simulator error type.

use qccd_device::{IonId, TrapId};
use std::fmt;

/// Errors raised while interpreting an executable.
///
/// These guard against mismatched device/executable pairs, hand-written
/// executables, and compiler bugs. `qccd-compiler` aims never to emit a
/// stream that triggers them for the device it compiled against, but the
/// simulator always re-checks rather than trusting that invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An instruction referenced a trap the device does not have.
    UnknownTrap(TrapId),
    /// An instruction referenced an ion outside the executable's range.
    UnknownIon(IonId),
    /// A split named an ion that is not at the required chain end.
    SplitNotAtEnd(IonId, TrapId),
    /// A move/merge named an ion that is not in flight.
    IonNotInFlight(IonId),
    /// A gate named ions that are not co-located in one trap.
    NotColocated(IonId, IonId),
    /// An ion-swap named ions that are not chain-adjacent.
    NotAdjacent(IonId, IonId),
    /// A gate or split/merge targeted an ion that is in flight.
    IonInFlight(IonId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTrap(t) => write!(f, "executable references unknown trap {t}"),
            SimError::UnknownIon(i) => write!(f, "executable references unknown ion {i}"),
            SimError::SplitNotAtEnd(i, t) => {
                write!(f, "split of {i} which is not at the required end of {t}")
            }
            SimError::IonNotInFlight(i) => write!(f, "{i} is not in flight"),
            SimError::NotColocated(a, b) => write!(f, "{a} and {b} are not in the same trap"),
            SimError::NotAdjacent(a, b) => write!(f, "{a} and {b} are not chain-adjacent"),
            SimError::IonInFlight(i) => write!(f, "{i} is in flight and cannot be gated"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_entities() {
        let e = SimError::NotColocated(IonId(3), IonId(9));
        assert!(e.to_string().contains("ion3"));
        assert!(e.to_string().contains("ion9"));
    }
}
