//! Simulation results: the application- and device-level metrics of
//! Fig. 3's output box.

use qccd_compiler::OpCounts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The canonical text form of an `f64`: exactly what `serde_json`
/// emits for the value (shortest round-trippable decimal, always a
/// decimal point, `null` for non-finite).
///
/// Every CSV-ish `Display` path that feeds golden snapshots goes
/// through this helper, so the text views and the `--json` dumps of an
/// artifact can never disagree on a float. Defined via the standard
/// `serde_json::to_string` API only, so it survives swapping the
/// vendored stub for the real crate.
pub fn canonical_float(f: f64) -> String {
    // qccd-lint: allow(engine-panic, panic-discipline) — serializing plain data structs cannot fail
    serde_json::to_string(&f).expect("f64 always serializes")
}

/// Summed error probabilities by operation class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ErrorTotals {
    /// Single-qubit gate errors (including lowering wrappers).
    pub one_qubit: f64,
    /// Program MS gate errors.
    pub two_qubit: f64,
    /// Gate-based reorder swap errors (3 MS + wrappers each).
    pub swap: f64,
    /// Measurement errors.
    pub measure: f64,
}

impl ErrorTotals {
    /// Sum over all classes.
    pub fn total(&self) -> f64 {
        self.one_qubit + self.two_qubit + self.swap + self.measure
    }
}

/// Wall-clock decomposition of the makespan (the Fig. 6b analysis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeBreakdown {
    /// Time during which at least one gate (or measurement) was executing.
    pub compute_us: f64,
    /// Time during which at least one shuttling operation was active and
    /// no gate was executing.
    pub communication_us: f64,
    /// Total busy time of gates summed over traps (can exceed the
    /// makespan when traps work in parallel).
    pub gate_busy_us: f64,
    /// Total busy time of shuttling operations.
    pub shuttle_busy_us: f64,
    /// Total time shuttles spent queueing for segments or junctions (the
    /// paper's congestion "wait operations").
    pub shuttle_wait_us: f64,
}

/// Full result of simulating one executable on one device and model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Source circuit name.
    pub name: String,
    /// Makespan in µs.
    pub total_time_us: f64,
    /// Natural log of the application fidelity (Σ ln(1 − e_op); `-inf` if
    /// any operation failed outright).
    pub log_fidelity: f64,
    /// Instruction counts of the executable.
    pub counts: OpCounts,
    /// Peak per-mode motional occupation n̄ over every chain and every
    /// instant (quanta) — the Fig. 6f metric. A chain of N ions spreads
    /// its accumulated energy over its N motional modes, so n̄ = E/N.
    pub peak_motional_energy: f64,
    /// Peak per-mode motional occupation per trap.
    pub trap_peak_energy: Vec<f64>,
    /// Final accumulated motional energy per trap (total quanta, not per
    /// mode).
    pub trap_final_energy: Vec<f64>,
    /// Number of MS gate executions including reorder swaps (each swap
    /// contributes 3).
    pub ms_executions: usize,
    /// Σ background error (Γτ) over MS executions — Fig. 6g.
    pub ms_background_error_sum: f64,
    /// Σ motional error (A(2n̄+1)) over MS executions — Fig. 6g.
    pub ms_motional_error_sum: f64,
    /// Error totals by class.
    pub errors: ErrorTotals,
    /// Makespan decomposition.
    pub time: TimeBreakdown,
}

impl SimReport {
    /// Application fidelity: the product of all operation fidelities
    /// (paper §V-B), recovered from log space.
    pub fn fidelity(&self) -> f64 {
        self.log_fidelity.exp()
    }

    /// Makespan in seconds (the unit of the paper's runtime figures).
    pub fn total_time_s(&self) -> f64 {
        self.total_time_us * 1.0e-6
    }

    /// Mean background error per MS execution (0 if none ran).
    pub fn mean_ms_background_error(&self) -> f64 {
        if self.ms_executions == 0 {
            0.0
        } else {
            self.ms_background_error_sum / self.ms_executions as f64
        }
    }

    /// Mean motional error per MS execution (0 if none ran).
    pub fn mean_ms_motional_error(&self) -> f64 {
        if self.ms_executions == 0 {
            0.0
        } else {
            self.ms_motional_error_sum / self.ms_executions as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "report for {}", self.name)?;
        writeln!(f, "  time: {:.6} s", self.total_time_s())?;
        // Canonical float text shared with the JSON dumps, so the
        // human-readable report and the `--json` artifact never show
        // different fidelities.
        writeln!(f, "  fidelity: {}", canonical_float(self.fidelity()))?;
        writeln!(
            f,
            "  compute/communication: {:.6}/{:.6} s",
            self.time.compute_us * 1e-6,
            self.time.communication_us * 1e-6
        )?;
        writeln!(
            f,
            "  peak motional energy: {:.3} quanta",
            self.peak_motional_energy
        )?;
        write!(
            f,
            "  ops: {} 1q, {} ms, {} swaps, {} ionswaps, {} splits, {} moves, {} merges",
            self.counts.one_qubit_gates,
            self.counts.two_qubit_gates,
            self.counts.swap_gates,
            self.counts.ion_swaps,
            self.counts.splits,
            self.counts.moves,
            self.counts.merges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> SimReport {
        SimReport {
            name: "t".into(),
            total_time_us: 1_000_000.0,
            log_fidelity: -0.5,
            counts: OpCounts::default(),
            peak_motional_energy: 3.5,
            trap_peak_energy: vec![3.5, 1.0],
            trap_final_energy: vec![3.0, 1.0],
            ms_executions: 10,
            ms_background_error_sum: 0.001,
            ms_motional_error_sum: 0.01,
            errors: ErrorTotals::default(),
            time: TimeBreakdown::default(),
        }
    }

    #[test]
    fn fidelity_recovers_from_log_space() {
        let r = dummy();
        assert!((r.fidelity() - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn failed_run_has_zero_fidelity() {
        let mut r = dummy();
        r.log_fidelity = f64::NEG_INFINITY;
        assert_eq!(r.fidelity(), 0.0);
    }

    #[test]
    fn seconds_conversion() {
        assert!((dummy().total_time_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_ms_errors_divide_by_executions() {
        let r = dummy();
        assert!((r.mean_ms_background_error() - 1e-4).abs() < 1e-15);
        assert!((r.mean_ms_motional_error() - 1e-3).abs() < 1e-15);
        let mut empty = dummy();
        empty.ms_executions = 0;
        assert_eq!(empty.mean_ms_background_error(), 0.0);
    }

    #[test]
    fn error_totals_sum() {
        let e = ErrorTotals {
            one_qubit: 0.1,
            two_qubit: 0.2,
            swap: 0.3,
            measure: 0.4,
        };
        assert!((e.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_metrics() {
        let text = dummy().to_string();
        assert!(text.contains("fidelity"));
        assert!(text.contains("peak motional energy"));
    }

    #[test]
    fn canonical_float_agrees_with_the_json_emitter_and_round_trips() {
        for v in [0.0, -0.0, 2.0, 0.1, 0.30504420999999804, 1e-300, -1e300] {
            let text = canonical_float(v);
            assert_eq!(text, serde_json::to_string(&v).unwrap());
            let back: f64 = serde_json::from_str(&text).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "drift for {v:?}");
        }
        assert_eq!(canonical_float(f64::NAN), "null");
        assert_eq!(canonical_float(f64::INFINITY), "null");
    }
}
