//! Interval bookkeeping for the compute/communication time decomposition
//! (the Fig. 6b analysis).

/// Accumulates time intervals and measures their union.
///
/// Used to answer "for how much wall-clock time was at least one gate
/// executing?" without double-counting overlapping intervals.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    intervals: Vec<(f64, f64)>,
}

impl SpanSet {
    /// Creates an empty span set.
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Records the interval `[start, end)`. Zero- or negative-length
    /// intervals are ignored.
    pub fn add(&mut self, start: f64, end: f64) {
        if end > start {
            self.intervals.push((start, end));
        }
    }

    /// Total length of the union of all recorded intervals.
    pub fn union_length(&self) -> f64 {
        let mut iv = self.intervals.clone();
        iv.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut total = 0.0;
        let mut cur: Option<(f64, f64)> = None;
        for (s, e) in iv {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cur = Some((cs, ce.max(e)));
                    } else {
                        total += ce - cs;
                        cur = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    /// Length of the union of `self` minus its overlap with `other`
    /// (time covered by `self` but not by `other`).
    pub fn union_length_excluding(&self, other: &SpanSet) -> f64 {
        // Sweep over both sets of boundaries.
        let mut events: Vec<(f64, i32, i32)> = Vec::new();
        for &(s, e) in &self.intervals {
            events.push((s, 1, 0));
            events.push((e, -1, 0));
        }
        for &(s, e) in &other.intervals {
            events.push((s, 0, 1));
            events.push((e, 0, -1));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut mine = 0;
        let mut theirs = 0;
        let mut last = f64::NEG_INFINITY;
        let mut total = 0.0;
        for (t, dm, dt) in events {
            if mine > 0 && theirs == 0 && last.is_finite() {
                total += t - last;
            }
            mine += dm;
            theirs += dt;
            last = t;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_overlaps() {
        let mut s = SpanSet::new();
        s.add(0.0, 10.0);
        s.add(5.0, 15.0);
        s.add(20.0, 25.0);
        assert!((s.union_length() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_intervals() {
        let mut s = SpanSet::new();
        assert_eq!(s.union_length(), 0.0);
        s.add(5.0, 5.0);
        s.add(7.0, 3.0);
        assert_eq!(s.union_length(), 0.0);
    }

    #[test]
    fn exclusion_subtracts_overlap() {
        let mut comm = SpanSet::new();
        comm.add(0.0, 10.0);
        let mut gates = SpanSet::new();
        gates.add(4.0, 6.0);
        // Communication-only time: [0,4) and [6,10) = 8.
        assert!((comm.union_length_excluding(&gates) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn exclusion_with_no_overlap_is_full_union() {
        let mut a = SpanSet::new();
        a.add(0.0, 3.0);
        a.add(10.0, 12.0);
        let b = SpanSet::new();
        assert!((a.union_length_excluding(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_intervals_do_not_double_count() {
        let mut s = SpanSet::new();
        s.add(0.0, 5.0);
        s.add(5.0, 10.0);
        assert!((s.union_length() - 10.0).abs() < 1e-12);
    }
}
