//! Discrete-event simulator for QCCD executables.
//!
//! Implements §V-B/§VII of the paper: a custom simulator that estimates
//! application run time, reliability and device-level metrics, because
//! state-vector noise simulators are intractable beyond 50–60 qubits.
//!
//! ## Timing
//!
//! The executable is a dependency-respecting total order, so timing is
//! computed by *resource-timeline list scheduling*: every instruction
//! starts as soon as its ion(s) and required resources are free.
//! Resources encode the paper's parallelism constraints (§V-B):
//!
//! * each **trap** executes at most one gate / split / merge at a time
//!   (gates within a trap are serial);
//! * **segments** and **junctions** hold at most one ion: parallel
//!   shuttles queue at shared path elements, and the queueing delay is
//!   reported as shuttle wait time (the paper's inserted "wait
//!   operations");
//! * independent shuttles and gates in different traps run concurrently.
//!
//! ## Heating and fidelity
//!
//! Per-chain motional energy evolves under `qccd-physics`'s
//! [`HeatingModel`](qccd_physics::HeatingModel) exactly as in §VII-B, and
//! every operation contributes to the application fidelity product
//! (accumulated in log space) with two-qubit errors split into background
//! and motional parts for the Fig. 6g analysis.
//!
//! # Example
//!
//! ```
//! use qccd_circuit::{Circuit, Qubit};
//! use qccd_compiler::{compile, CompilerConfig};
//! use qccd_device::presets;
//! use qccd_physics::PhysicalModel;
//! use qccd_sim::simulate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new("bell", 2);
//! circuit.h(Qubit(0));
//! circuit.cx(Qubit(0), Qubit(1));
//! circuit.measure_all();
//!
//! let device = presets::l6(20);
//! let exe = compile(&circuit, &device, &CompilerConfig::default())?;
//! let report = simulate(&exe, &device, &PhysicalModel::default())?;
//! assert!(report.fidelity() > 0.99);
//! assert!(report.total_time_us > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod report;
pub mod spans;

pub use engine::simulate;
pub use error::SimError;
pub use report::{canonical_float, ErrorTotals, SimReport, TimeBreakdown};
