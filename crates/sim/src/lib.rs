//! Discrete-event simulator for QCCD executables.
//!
//! Implements §V-B/§VII of the paper: a custom simulator that estimates
//! application run time, reliability and device-level metrics, because
//! state-vector noise simulators are intractable beyond 50–60 qubits.
//!
//! ## Timing
//!
//! The executable is a dependency-respecting total order, so timing is
//! computed by *resource-timeline list scheduling*: every instruction
//! starts as soon as its ion(s) and required resources are free.
//! Resources encode the paper's parallelism constraints (§V-B):
//!
//! * each **trap** executes at most one gate / split / merge at a time
//!   (gates within a trap are serial);
//! * **segments** and **junctions** hold at most one ion: parallel
//!   shuttles queue at shared path elements, and the queueing delay is
//!   reported as shuttle wait time (the paper's inserted "wait
//!   operations");
//! * independent shuttles and gates in different traps run concurrently.
//!
//! ## Heating and fidelity
//!
//! Per-chain motional energy evolves under `qccd-physics`'s
//! [`HeatingModel`](qccd_physics::HeatingModel) exactly as in §VII-B, and
//! every operation contributes to the application fidelity product
//! (accumulated in log space) with two-qubit errors split into background
//! and motional parts for the Fig. 6g analysis.
//!
//! # Example
//!
//! ```
//! use qccd_circuit::{Circuit, Qubit};
//! use qccd_compiler::{compile, CompilerConfig};
//! use qccd_device::presets;
//! use qccd_physics::PhysicalModel;
//! use qccd_sim::simulate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new("bell", 2);
//! circuit.h(Qubit(0));
//! circuit.cx(Qubit(0), Qubit(1));
//! circuit.measure_all();
//!
//! let device = presets::l6(20);
//! let exe = compile(&circuit, &device, &CompilerConfig::default())?;
//! let report = simulate(&exe, &device, &PhysicalModel::default())?;
//! assert!(report.fidelity() > 0.99);
//! assert!(report.total_time_us > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod des;
pub mod engine;
pub mod error;
pub mod report;
pub mod spans;

pub use des::{
    simulate_des, simulate_des_with_hook, Event, EventHook, EventKind, EventQueue, NullHook,
    ResourceTimelines,
};
pub use engine::simulate;
pub use error::SimError;
pub use report::{canonical_float, ErrorTotals, SimReport, TimeBreakdown};

use qccd_compiler::Executable;
use qccd_device::Device;
use qccd_physics::PhysicalModel;

/// Which simulation kernel executes an executable.
///
/// Both kernels produce field-for-field identical [`SimReport`]s
/// (bit-identical floats; pinned by the `sim_kernel_diff` differential
/// suite), so the choice affects only execution strategy, never
/// results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimKernel {
    /// The original lock-step ready-time scan ([`engine`]).
    #[default]
    Legacy,
    /// The discrete-event kernel ([`des`]): a time-ordered event loop
    /// over explicit resource timelines, with an event-hook seam for
    /// scenario injection.
    Des,
}

impl std::str::FromStr for SimKernel {
    type Err = String;

    /// Parses `legacy` or `des` (ASCII case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "legacy" => Ok(SimKernel::Legacy),
            "des" => Ok(SimKernel::Des),
            other => Err(format!(
                "unknown kernel `{other}` (expected `legacy` or `des`)"
            )),
        }
    }
}

impl std::fmt::Display for SimKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimKernel::Legacy => "legacy",
            SimKernel::Des => "des",
        })
    }
}

/// Simulates `exe` with the chosen kernel. Equivalent to calling
/// [`simulate`] or [`simulate_des`] directly.
///
/// # Errors
///
/// The conditions documented on [`simulate`] — identical for both
/// kernels.
pub fn simulate_with(
    kernel: SimKernel,
    exe: &Executable,
    device: &Device,
    model: &PhysicalModel,
) -> Result<SimReport, SimError> {
    match kernel {
        SimKernel::Legacy => simulate(exe, device, model),
        SimKernel::Des => simulate_des(exe, device, model),
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;

    #[test]
    fn kernel_parses_and_displays() {
        assert_eq!("legacy".parse::<SimKernel>().unwrap(), SimKernel::Legacy);
        assert_eq!("des".parse::<SimKernel>().unwrap(), SimKernel::Des);
        assert_eq!("DES".parse::<SimKernel>().unwrap(), SimKernel::Des);
        assert!("turbo".parse::<SimKernel>().is_err());
        assert_eq!(SimKernel::Legacy.to_string(), "legacy");
        assert_eq!(SimKernel::Des.to_string(), "des");
        assert_eq!(SimKernel::default(), SimKernel::Legacy);
    }

    #[test]
    fn simulate_with_dispatches_to_both_kernels() {
        use qccd_circuit::{Circuit, Qubit};
        use qccd_compiler::{compile, CompilerConfig};
        use qccd_device::presets;
        let mut c = Circuit::new("bell", 2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        let d = presets::l6(20);
        let exe = compile(&c, &d, &CompilerConfig::default()).unwrap();
        let m = PhysicalModel::default();
        let a = simulate_with(SimKernel::Legacy, &exe, &d, &m).unwrap();
        let b = simulate_with(SimKernel::Des, &exe, &d, &m).unwrap();
        assert_eq!(a, b);
    }
}
