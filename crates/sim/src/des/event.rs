//! Typed simulation events: the vocabulary of the DES kernel.
//!
//! Every state change in the event kernel is a timestamped [`Event`]
//! popped from the [`EventQueue`](crate::des::EventQueue) in committed
//! order (nondecreasing time, FIFO sequence within a tick). Hooks
//! observe this stream verbatim, which is the seam later scenario work
//! (ion loss, calibration drift) attaches to.

use qccd_device::JunctionId;

/// One timestamped occurrence in the kernel's committed event order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time in µs.
    pub time: f64,
    /// Schedule sequence number: among events with equal `time`, the
    /// kernel commits in ascending `seq` (the order the events were
    /// scheduled), making ties deterministic.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Event payloads. `inst` indexes the executable's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A gate or measurement began executing in its trap.
    GateStart {
        /// Instruction index.
        inst: usize,
    },
    /// A gate or measurement finished.
    GateFinish {
        /// Instruction index.
        inst: usize,
    },
    /// An in-flight ion began traversing one route leg.
    ShuttleLegStart {
        /// Instruction index.
        inst: usize,
    },
    /// An in-flight ion completed its route leg.
    ShuttleLegFinish {
        /// Instruction index.
        inst: usize,
    },
    /// A chain split began.
    SplitStart {
        /// Instruction index.
        inst: usize,
    },
    /// A chain split finished; the ion is now in flight.
    SplitFinish {
        /// Instruction index.
        inst: usize,
    },
    /// A chain merge began.
    MergeStart {
        /// Instruction index.
        inst: usize,
    },
    /// A chain merge finished; the ion joined the destination chain.
    MergeFinish {
        /// Instruction index.
        inst: usize,
    },
    /// A physical ion rotation (split–rotate–merge exchange) began.
    IonSwapStart {
        /// Instruction index.
        inst: usize,
    },
    /// A physical ion rotation finished.
    IonSwapFinish {
        /// Instruction index.
        inst: usize,
    },
    /// An in-flight ion crossed a junction mid-leg. Purely informational:
    /// the crossing time is interpolated linearly within the leg's
    /// `[start, end)` window, not derived from per-element speeds.
    JunctionTransit {
        /// Instruction index of the enclosing move.
        inst: usize,
        /// The junction crossed.
        junction: JunctionId,
    },
}

impl EventKind {
    /// The instruction this event belongs to.
    pub fn inst(&self) -> usize {
        match *self {
            EventKind::GateStart { inst }
            | EventKind::GateFinish { inst }
            | EventKind::ShuttleLegStart { inst }
            | EventKind::ShuttleLegFinish { inst }
            | EventKind::SplitStart { inst }
            | EventKind::SplitFinish { inst }
            | EventKind::MergeStart { inst }
            | EventKind::MergeFinish { inst }
            | EventKind::IonSwapStart { inst }
            | EventKind::IonSwapFinish { inst }
            | EventKind::JunctionTransit { inst, .. } => inst,
        }
    }

    /// `true` for the `*Finish` variants (the instruction's resources are
    /// released when this event commits).
    pub fn is_finish(&self) -> bool {
        matches!(
            self,
            EventKind::GateFinish { .. }
                | EventKind::ShuttleLegFinish { .. }
                | EventKind::SplitFinish { .. }
                | EventKind::MergeFinish { .. }
                | EventKind::IonSwapFinish { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_is_extracted_from_every_variant() {
        let kinds = [
            EventKind::GateStart { inst: 7 },
            EventKind::GateFinish { inst: 7 },
            EventKind::ShuttleLegStart { inst: 7 },
            EventKind::ShuttleLegFinish { inst: 7 },
            EventKind::SplitStart { inst: 7 },
            EventKind::SplitFinish { inst: 7 },
            EventKind::MergeStart { inst: 7 },
            EventKind::MergeFinish { inst: 7 },
            EventKind::IonSwapStart { inst: 7 },
            EventKind::IonSwapFinish { inst: 7 },
            EventKind::JunctionTransit {
                inst: 7,
                junction: JunctionId(0),
            },
        ];
        for k in kinds {
            assert_eq!(k.inst(), 7, "{k:?}");
        }
    }

    #[test]
    fn finish_classification() {
        assert!(EventKind::GateFinish { inst: 0 }.is_finish());
        assert!(EventKind::MergeFinish { inst: 0 }.is_finish());
        assert!(!EventKind::GateStart { inst: 0 }.is_finish());
        assert!(!EventKind::JunctionTransit {
            inst: 0,
            junction: JunctionId(1),
        }
        .is_finish());
    }
}
