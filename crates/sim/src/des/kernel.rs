//! The event-kernel loop: bind, schedule, commit, finalize.
//!
//! The kernel runs in four strictly separated stages, arranged so every
//! floating-point accumulation happens in the *same order* as the
//! legacy engine's sequential scan — the differential harness pins the
//! two kernels field-for-field identical, and float addition is not
//! associative, so ordering is part of the contract:
//!
//! 1. **Bind** (program order): replay a [`MachineState`] over the
//!    instruction stream exactly as the legacy engine does, performing
//!    its validity checks in the same order (so the first failing
//!    instruction yields the identical [`SimError`]) and computing
//!    every *timing-independent* quantity — durations, error charges,
//!    heating updates, MS statistics — with the same arithmetic. This
//!    is sound because the resource discipline below serializes all
//!    instructions that touch the same trap, ion or chain in program
//!    order, so state- and energy-dependent values cannot observe any
//!    other order at run time.
//! 2. **Schedule**: enqueue each instruction on the claim queue of
//!    every resource it uses ([`ResourceTimelines`]); an instruction is
//!    granted — and its start event scheduled at the max of its
//!    resources' free times — exactly when it reaches the head of all
//!    its queues.
//! 3. **Commit**: pop events in `(time, seq)` order from the
//!    [`EventQueue`]. Start events reserve resources (panicking on any
//!    double-booking) and schedule the matching finish; finish events
//!    release resources and grant successors. Every committed event is
//!    offered to the caller's [`EventHook`](super::EventHook).
//! 4. **Finalize** (program order again): fold the per-instruction
//!    `[start, end)` windows into the span sets, busy/wait totals and
//!    makespan in instruction order, then assemble the [`SimReport`]
//!    field-by-field the way the legacy engine does.

use super::event::EventKind;
use super::queue::EventQueue;
use super::timeline::ResourceTimelines;
use super::EventHook;
use crate::engine::{charge, validate};
use crate::error::SimError;
use crate::report::{ErrorTotals, SimReport, TimeBreakdown};
use crate::spans::SpanSet;
use qccd_compiler::{Executable, Inst, MachineState, Placement};
use qccd_device::{Device, IonId, JunctionId, JunctionKind, SegmentId, TrapId};
use qccd_physics::PhysicalModel;

/// Runs the event kernel over `exe`. Entry point for
/// [`simulate_des_with_hook`](super::simulate_des_with_hook).
pub(super) fn run(
    exe: &Executable,
    device: &Device,
    model: &PhysicalModel,
    hook: &mut dyn EventHook,
) -> Result<SimReport, SimError> {
    validate(exe, device)?;
    let map = ResourceMap::new(exe, device);
    let placement = Placement::from_chains(exe.initial_chains().to_vec());
    let mut binder = Binder {
        device,
        model,
        st: MachineState::new(&placement),
        trap_energy: vec![0.0; device.trap_count()],
        trap_peak: vec![0.0; device.trap_count()],
        flight_energy: vec![0.0; exe.num_ions() as usize],
        log_fidelity: 0.0,
        errors: ErrorTotals::default(),
        ms_executions: 0,
        ms_background_sum: 0.0,
        ms_motional_sum: 0.0,
    };
    let mut prog = BoundProgram::with_capacity(exe.len());
    for inst in exe.instructions() {
        binder.bind(inst, &map, &mut prog)?;
    }

    let timings = if hook.observes_events() {
        commit(&prog, &map, hook)
    } else {
        relax(&prog, &map)
    };
    Ok(finalize(exe, binder, &prog, &timings))
}

/// Flat index space over all schedulable resources: ions, then traps,
/// then segments, then junctions.
struct ResourceMap {
    ions: usize,
    traps: usize,
    segments: usize,
    junctions: usize,
}

impl ResourceMap {
    fn new(exe: &Executable, device: &Device) -> Self {
        ResourceMap {
            ions: exe.num_ions() as usize,
            traps: device.trap_count(),
            segments: device.segment_count(),
            junctions: device.junction_count(),
        }
    }

    fn total(&self) -> usize {
        self.ions + self.traps + self.segments + self.junctions
    }

    fn ion(&self, i: IonId) -> usize {
        i.index()
    }

    fn trap(&self, t: TrapId) -> usize {
        self.ions + t.index()
    }

    fn seg(&self, s: SegmentId) -> usize {
        self.ions + self.traps + s.index()
    }

    fn junc(&self, j: JunctionId) -> usize {
        self.ions + self.traps + self.segments + j.index()
    }
}

/// Instruction class, selecting event kinds and span accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    /// Gate or measurement: gate spans, gate busy time.
    Gate,
    /// A move along one route leg: comm spans, shuttle busy + wait time.
    Leg,
    /// Split / merge / ion rotation: comm spans, shuttle busy time.
    Split,
    /// See [`OpClass::Split`].
    Merge,
    /// See [`OpClass::Split`].
    IonSwap,
}

/// One instruction after the bind pass: its exclusive resource set (in
/// the legacy engine's max-fold order, deduplicated), its duration, and
/// everything needed to emit its events. Resources and junctions are
/// `(start, len)` ranges into the owning [`BoundProgram`]'s flat arenas
/// — no per-instruction allocations.
#[derive(Clone, Copy)]
struct BoundInst {
    res_start: u32,
    res_len: u32,
    junc_start: u32,
    junc_len: u32,
    duration: f64,
    op: OpClass,
}

/// The whole bound instruction stream plus the two flat arenas its
/// instructions' resource and junction ranges point into.
struct BoundProgram {
    insts: Vec<BoundInst>,
    /// Every instruction's resource ids, concatenated.
    resources: Vec<u32>,
    /// Every move's crossed junctions, concatenated.
    junctions: Vec<JunctionId>,
}

impl BoundProgram {
    fn with_capacity(insts: usize) -> Self {
        BoundProgram {
            insts: Vec::with_capacity(insts),
            // Most instructions claim 2–3 resources (gates: ion(s) +
            // trap); legs add their path elements on top.
            resources: Vec::with_capacity(insts * 3),
            junctions: Vec::new(),
        }
    }

    fn resources_of(&self, i: usize) -> &[u32] {
        let b = &self.insts[i];
        &self.resources[b.res_start as usize..(b.res_start + b.res_len) as usize]
    }

    fn junctions_of(&self, i: usize) -> &[JunctionId] {
        let b = &self.insts[i];
        &self.junctions[b.junc_start as usize..(b.junc_start + b.junc_len) as usize]
    }

    /// Seals one instruction: deduplicates the resource ids pushed since
    /// `res_start` (keeping first occurrences — duplicates arise only in
    /// hand-authored streams, e.g. `ms ion0, ion0`, but would wedge the
    /// head-of-queue grant rule) and records the arena ranges.
    fn finish_inst(&mut self, res_start: usize, junc_start: usize, duration: f64, op: OpClass) {
        let mut len = res_start;
        for i in res_start..self.resources.len() {
            let r = self.resources[i];
            if !self.resources[res_start..len].contains(&r) {
                self.resources[len] = r;
                len += 1;
            }
        }
        self.resources.truncate(len);
        self.insts.push(BoundInst {
            res_start: res_start as u32,
            res_len: (len - res_start) as u32,
            junc_start: junc_start as u32,
            junc_len: (self.junctions.len() - junc_start) as u32,
            duration,
            op,
        });
    }
}

impl BoundInst {
    fn start_kind(&self, inst: usize) -> EventKind {
        match self.op {
            OpClass::Gate => EventKind::GateStart { inst },
            OpClass::Leg => EventKind::ShuttleLegStart { inst },
            OpClass::Split => EventKind::SplitStart { inst },
            OpClass::Merge => EventKind::MergeStart { inst },
            OpClass::IonSwap => EventKind::IonSwapStart { inst },
        }
    }

    fn finish_kind(&self, inst: usize) -> EventKind {
        match self.op {
            OpClass::Gate => EventKind::GateFinish { inst },
            OpClass::Leg => EventKind::ShuttleLegFinish { inst },
            OpClass::Split => EventKind::SplitFinish { inst },
            OpClass::Merge => EventKind::MergeFinish { inst },
            OpClass::IonSwap => EventKind::IonSwapFinish { inst },
        }
    }
}

/// The program-order bind pass: legacy-identical validity checks and
/// timing-independent effect computation. Field names and update order
/// deliberately mirror the legacy `Engine`.
struct Binder<'a> {
    device: &'a Device,
    model: &'a PhysicalModel,
    st: MachineState,
    trap_energy: Vec<f64>,
    trap_peak: Vec<f64>,
    flight_energy: Vec<f64>,
    log_fidelity: f64,
    errors: ErrorTotals,
    ms_executions: usize,
    ms_background_sum: f64,
    ms_motional_sum: f64,
}

impl Binder<'_> {
    fn charge_error(&mut self, err: f64) {
        charge(&mut self.log_fidelity, err);
    }

    fn bump_trap_energy(&mut self, trap: TrapId, energy: f64) {
        self.trap_energy[trap.index()] = energy;
        let nbar = energy / self.st.chain_len(trap).max(1) as f64;
        if nbar > self.trap_peak[trap.index()] {
            self.trap_peak[trap.index()] = nbar;
        }
    }

    fn located_trap(&self, ion: IonId) -> Result<TrapId, SimError> {
        self.st.trap_of(ion).ok_or(SimError::IonInFlight(ion))
    }

    fn nbar(&self, trap: TrapId) -> f64 {
        let n = self.st.chain_len(trap).max(1) as f64;
        self.trap_energy[trap.index()] / n
    }

    fn ms_interaction(&mut self, a: IonId, b: IonId, trap: TrapId) -> (f64, f64) {
        let distance = self.st.distance(a, b).max(1);
        let chain_len = self.st.chain_len(trap) as u32;
        let tau = self.model.two_qubit_time(distance, chain_len);
        let breakdown = self
            .model
            .fidelity
            .two_qubit_error(tau, chain_len, self.nbar(trap));
        self.ms_executions += 1;
        self.ms_background_sum += breakdown.background;
        self.ms_motional_sum += breakdown.motional;
        self.charge_error(breakdown.total());
        (tau, breakdown.total())
    }

    /// Binds one instruction, appending its resources/junctions to
    /// `prog`'s arenas and its [`BoundInst`] to the stream.
    fn bind(
        &mut self,
        inst: &Inst,
        map: &ResourceMap,
        prog: &mut BoundProgram,
    ) -> Result<(), SimError> {
        let rs = prog.resources.len();
        let js = prog.junctions.len();
        match inst {
            Inst::OneQubit { ion, .. } => {
                let trap = self.located_trap(*ion)?;
                self.charge_error(self.model.fidelity.one_qubit_error);
                self.errors.one_qubit += self.model.fidelity.one_qubit_error;
                prog.resources
                    .extend([map.ion(*ion) as u32, map.trap(trap) as u32]);
                prog.finish_inst(rs, js, self.model.one_qubit_time, OpClass::Gate);
            }
            Inst::Ms { a, b } => {
                let trap = self.located_trap(*a)?;
                if self.st.trap_of(*b) != Some(trap) {
                    return Err(SimError::NotColocated(*a, *b));
                }
                let (tau, err) = self.ms_interaction(*a, *b, trap);
                self.errors.two_qubit += err;
                prog.resources.extend([
                    map.ion(*a) as u32,
                    map.ion(*b) as u32,
                    map.trap(trap) as u32,
                ]);
                prog.finish_inst(rs, js, tau, OpClass::Gate);
            }
            Inst::SwapGate { a, b } => {
                let trap = self.located_trap(*a)?;
                if self.st.trap_of(*b) != Some(trap) {
                    return Err(SimError::NotColocated(*a, *b));
                }
                // 3 MS gates plus the single-qubit corrections, charged in
                // the same sequence as the legacy engine.
                let mut tau = 0.0;
                let mut swap_err = 0.0;
                for _ in 0..3 {
                    let (t, e) = self.ms_interaction(*a, *b, trap);
                    tau += t;
                    swap_err += e;
                }
                for _ in 0..qccd_compiler::lowering::WRAPPERS_PER_CX {
                    tau += self.model.one_qubit_time;
                    self.charge_error(self.model.fidelity.one_qubit_error);
                    swap_err += self.model.fidelity.one_qubit_error;
                }
                self.errors.swap += swap_err;
                self.st.swap_states(*a, *b);
                prog.resources.extend([
                    map.ion(*a) as u32,
                    map.ion(*b) as u32,
                    map.trap(trap) as u32,
                ]);
                prog.finish_inst(rs, js, tau, OpClass::Gate);
            }
            Inst::IonSwap { a, b } => {
                let trap = self.located_trap(*a)?;
                if self.st.trap_of(*b) != Some(trap) {
                    return Err(SimError::NotColocated(*a, *b));
                }
                if self.st.distance(*a, *b) != 1 {
                    return Err(SimError::NotAdjacent(*a, *b));
                }
                let n = self.st.chain_len(trap) as u32;
                let heating = &self.model.heating;
                let (tau, new_energy) = if n > 2 {
                    let (pair, rest) = heating.split(self.trap_energy[trap.index()], 2, n - 2);
                    let pair = pair + heating.k1;
                    (
                        self.model.shuttle.ion_swap_time(),
                        heating.merge(pair, rest, n),
                    )
                } else {
                    (
                        self.model.shuttle.ion_rotation,
                        self.trap_energy[trap.index()] + heating.k1,
                    )
                };
                self.bump_trap_energy(trap, new_energy);
                self.st.swap_positions(*a, *b);
                prog.resources.extend([
                    map.ion(*a) as u32,
                    map.ion(*b) as u32,
                    map.trap(trap) as u32,
                ]);
                prog.finish_inst(rs, js, tau, OpClass::IonSwap);
            }
            Inst::Split { ion, trap, side } => {
                if self.st.trap_of(*ion) != Some(*trap) {
                    return Err(SimError::SplitNotAtEnd(*ion, *trap));
                }
                if self.st.end_ion(*trap, *side) != Some(*ion) {
                    return Err(SimError::SplitNotAtEnd(*ion, *trap));
                }
                let n = self.st.chain_len(*trap) as u32;
                let heating = &self.model.heating;
                let (e_ion, e_rest) = if n > 1 {
                    heating.split(self.trap_energy[trap.index()], 1, n - 1)
                } else {
                    (self.trap_energy[trap.index()] + heating.k1, 0.0)
                };
                self.flight_energy[ion.index()] = e_ion;
                self.st.remove_end(*ion, *trap, *side);
                self.bump_trap_energy(*trap, e_rest);
                prog.resources
                    .extend([map.ion(*ion) as u32, map.trap(*trap) as u32]);
                prog.finish_inst(rs, js, self.model.shuttle.split, OpClass::Split);
            }
            Inst::Move { ion, leg } => {
                if self.st.trap_of(*ion).is_some() {
                    return Err(SimError::IonNotInFlight(*ion));
                }
                let (mut y, mut x) = (0u32, 0u32);
                for j in &leg.junctions {
                    match self.device.junction(*j).kind() {
                        JunctionKind::Y => y += 1,
                        JunctionKind::X => x += 1,
                    }
                }
                let tau = self.model.shuttle.move_time(leg.length_units, y, x);
                self.flight_energy[ion.index()] += self
                    .model
                    .heating
                    .move_energy(leg.length_units, leg.junctions.len() as u32);
                // The ion is resource 0; path elements follow. The grant
                // logic relies on this layout to reproduce the legacy
                // engine's wait accounting.
                prog.resources.push(map.ion(*ion) as u32);
                for s in &leg.segments {
                    prog.resources.push(map.seg(*s) as u32);
                }
                for j in &leg.junctions {
                    prog.resources.push(map.junc(*j) as u32);
                }
                prog.junctions.extend_from_slice(&leg.junctions);
                prog.finish_inst(rs, js, tau, OpClass::Leg);
            }
            Inst::Merge { ion, trap, side } => {
                if self.st.trap_of(*ion).is_some() {
                    return Err(SimError::IonNotInFlight(*ion));
                }
                let n_result = self.st.chain_len(*trap) as u32 + 1;
                let merged = self.model.heating.merge(
                    self.trap_energy[trap.index()],
                    self.flight_energy[ion.index()],
                    n_result,
                );
                self.flight_energy[ion.index()] = 0.0;
                self.st.insert_end(*ion, *trap, *side);
                self.bump_trap_energy(*trap, merged);
                prog.resources
                    .extend([map.ion(*ion) as u32, map.trap(*trap) as u32]);
                prog.finish_inst(rs, js, self.model.shuttle.merge, OpClass::Merge);
            }
            Inst::Measure { ion } => {
                let trap = self.located_trap(*ion)?;
                self.charge_error(self.model.fidelity.measure_error);
                self.errors.measure += self.model.fidelity.measure_error;
                prog.resources
                    .extend([map.ion(*ion) as u32, map.trap(trap) as u32]);
                prog.finish_inst(rs, js, self.model.measure_time, OpClass::Gate);
            }
        }
        Ok(())
    }
}

/// Per-instruction timing resolved by the event loop.
#[derive(Debug, Clone, Copy, Default)]
struct Timing {
    start: f64,
    end: f64,
    /// Queueing delay behind busy path elements (moves only).
    wait: f64,
}

/// Builds and seals the claim queues: every instruction enqueued on
/// every resource it uses, in program order.
fn build_timelines(prog: &BoundProgram, map: &ResourceMap) -> ResourceTimelines {
    let mut tl = ResourceTimelines::new(map.total());
    for i in 0..prog.insts.len() {
        for &r in prog.resources_of(i) {
            tl.enqueue(r as usize, i);
        }
    }
    tl.seal();
    tl
}

/// Stage 2 + 3, unobserved: when no hook wants the event stream the
/// start/end/wait times are resolved by a direct worklist relaxation
/// over the claim queues — same grant rule, same max-folds, the same
/// float operations in the same order, no event heap and no events.
///
/// This is bitwise-identical to [`commit`] (pinned by a differential
/// test) because an instruction's timing is a pure function of its
/// resources' `free_at` values, which are final exactly when it reaches
/// the head of all its queues: every resource a granted instruction
/// waits on was last released by its immediate queue predecessor, and
/// only the instruction itself can touch those resources afterwards.
/// Time-ordered event popping therefore only sequences the *observable*
/// stream; with nobody observing, any grant-cascade order yields the
/// same timings.
fn relax(prog: &BoundProgram, map: &ResourceMap) -> Vec<Timing> {
    let bound = &prog.insts;
    let mut tl = build_timelines(prog, map);
    let mut granted = vec![0usize; bound.len()];
    let mut timings = vec![Timing::default(); bound.len()];
    let mut ready: Vec<usize> = Vec::new();
    for (i, b) in bound.iter().enumerate() {
        granted[i] = prog
            .resources_of(i)
            .iter()
            .filter(|&&r| tl.head(r as usize) == Some(i))
            .count();
        if granted[i] == b.res_len as usize {
            ready.push(i);
        }
    }

    let mut finished = 0usize;
    while let Some(i) = ready.pop() {
        resolve_timing(i, prog, &tl, &mut timings);
        let end = timings[i].end;
        for &r in prog.resources_of(i) {
            if let Some(h) = tl.pass_through(r as usize, i, end) {
                granted[h] += 1;
                if granted[h] == bound[h].res_len as usize {
                    ready.push(h);
                }
            }
        }
        finished += 1;
    }

    assert_eq!(
        finished,
        bound.len(),
        "relaxation stalled with instructions pending — the program-order \
         claim queues should make this impossible"
    );
    timings
}

/// Stage 2 + 3: build the claim queues, then drain the event heap.
fn commit(prog: &BoundProgram, map: &ResourceMap, hook: &mut dyn EventHook) -> Vec<Timing> {
    let bound = &prog.insts;
    let mut tl = build_timelines(prog, map);
    let mut granted = vec![0usize; bound.len()];
    let mut timings = vec![Timing::default(); bound.len()];
    let mut queue = EventQueue::with_capacity(bound.len());
    let mut finished = 0usize;

    // Initial grants: instructions already at the head of all their
    // queues start as soon as their resources are free (t = 0).
    for (i, b) in bound.iter().enumerate() {
        granted[i] = prog
            .resources_of(i)
            .iter()
            .filter(|&&r| tl.head(r as usize) == Some(i))
            .count();
        if granted[i] == b.res_len as usize {
            schedule_start(i, prog, &tl, &mut timings, &mut queue);
        }
    }

    while let Some(ev) = queue.pop() {
        hook.on_event(&ev);
        let i = ev.kind.inst();
        if ev.kind.is_finish() {
            for &r in prog.resources_of(i) {
                if let Some(h) = tl.release(r as usize, i, ev.time) {
                    granted[h] += 1;
                    if granted[h] == bound[h].res_len as usize {
                        schedule_start(h, prog, &tl, &mut timings, &mut queue);
                    }
                }
            }
            finished += 1;
        } else if !matches!(ev.kind, EventKind::JunctionTransit { .. }) {
            // A start event: take exclusive ownership (double-booking
            // panics inside `reserve`), emit any junction transits, and
            // schedule the finish.
            let b = &bound[i];
            for &r in prog.resources_of(i) {
                tl.reserve(r as usize, i);
            }
            let Timing { start, end, .. } = timings[i];
            let junctions = prog.junctions_of(i);
            let crossings = junctions.len();
            for (c, &j) in junctions.iter().enumerate() {
                let frac = (c + 1) as f64 / (crossings + 1) as f64;
                let at = start + b.duration * frac;
                queue.push(
                    at,
                    EventKind::JunctionTransit {
                        inst: i,
                        junction: j,
                    },
                );
            }
            queue.push(end, b.finish_kind(i));
        }
    }

    assert_eq!(
        finished,
        bound.len(),
        "event kernel stalled with instructions pending — the program-order \
         claim queues should make this impossible"
    );
    timings
}

/// Resolves instruction `i`'s start/end/wait from its resources' free
/// times. Called exactly once per instruction, at the moment it holds
/// the head of all its queues — at which point every `free_at` it reads
/// is final.
fn resolve_timing(i: usize, prog: &BoundProgram, tl: &ResourceTimelines, timings: &mut [Timing]) {
    let b = &prog.insts[i];
    let resources = prog.resources_of(i);
    let (start, wait) = if b.op == OpClass::Leg {
        // Mirrors the legacy engine's move step: the queueing delay is
        // how long the ion sat waiting for path elements, never the
        // reverse.
        let ion_free = tl.free_at(resources[0] as usize);
        let path_free = resources[1..]
            .iter()
            .fold(0.0f64, |t, &r| t.max(tl.free_at(r as usize)));
        (ion_free.max(path_free), (path_free - ion_free).max(0.0))
    } else {
        let start = resources
            .iter()
            .fold(0.0f64, |t, &r| t.max(tl.free_at(r as usize)));
        (start, 0.0)
    };
    timings[i] = Timing {
        start,
        end: start + b.duration,
        wait,
    };
}

/// [`resolve_timing`] plus the start event, for the observed event loop.
fn schedule_start(
    i: usize,
    prog: &BoundProgram,
    tl: &ResourceTimelines,
    timings: &mut [Timing],
    queue: &mut EventQueue,
) {
    resolve_timing(i, prog, tl, timings);
    queue.push(timings[i].start, prog.insts[i].start_kind(i));
}

/// Stage 4: fold per-instruction timings into the report in program
/// order, exactly as the legacy engine accumulates them step-by-step.
fn finalize(
    exe: &Executable,
    binder: Binder<'_>,
    prog: &BoundProgram,
    timings: &[Timing],
) -> SimReport {
    let mut gate_spans = SpanSet::new();
    let mut comm_spans = SpanSet::new();
    let mut gate_busy = 0.0;
    let mut shuttle_busy = 0.0;
    let mut shuttle_wait = 0.0;
    let mut makespan = 0.0f64;
    for (b, t) in prog.insts.iter().zip(timings) {
        match b.op {
            OpClass::Gate => {
                gate_spans.add(t.start, t.end);
                gate_busy += t.end - t.start;
            }
            OpClass::Leg => {
                shuttle_wait += t.wait;
                comm_spans.add(t.start, t.end);
                shuttle_busy += t.end - t.start;
            }
            OpClass::Split | OpClass::Merge | OpClass::IonSwap => {
                comm_spans.add(t.start, t.end);
                shuttle_busy += t.end - t.start;
            }
        }
        makespan = makespan.max(t.end);
    }

    let compute_us = gate_spans.union_length();
    let communication_us = comm_spans.union_length_excluding(&gate_spans);
    SimReport {
        name: exe.name().to_owned(),
        total_time_us: makespan,
        log_fidelity: binder.log_fidelity,
        counts: exe.counts(),
        peak_motional_energy: binder.trap_peak.iter().copied().fold(0.0, f64::max),
        trap_peak_energy: binder.trap_peak,
        trap_final_energy: binder.trap_energy,
        ms_executions: binder.ms_executions,
        ms_background_error_sum: binder.ms_background_sum,
        ms_motional_error_sum: binder.ms_motional_sum,
        errors: binder.errors,
        time: TimeBreakdown {
            compute_us,
            communication_us,
            gate_busy_us: gate_busy,
            shuttle_busy_us: shuttle_busy,
            shuttle_wait_us: shuttle_wait,
        },
    }
}
