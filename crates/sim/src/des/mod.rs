//! The discrete-event simulation kernel.
//!
//! A time-ordered event kernel over explicit resource timelines,
//! replacing the legacy engine's lock-step ready-time scan while
//! reusing the same [`SpanSet`](crate::spans::SpanSet) /
//! [`SimReport`](crate::SimReport) accounting. The two kernels are
//! pinned **field-for-field identical** (bit-identical floats, checked
//! by `tests/sim_kernel_diff.rs` over every golden spec and the full
//! policy matrix), so switching kernels can never change a paper
//! artifact.
//!
//! ## Architecture
//!
//! * [`EventQueue`] — binary min-heap of typed [`Event`]s ordered by
//!   `(time, seq)`: deterministic FIFO tie-breaking at equal times.
//! * [`ResourceTimelines`] — per-resource (ion / trap / segment /
//!   junction) FIFO claim queues with exclusive occupancy; attempted
//!   double-booking of a path element is a panic, not a silent overlap.
//! * [`kernel`](self) loop — binds instructions to resources in program
//!   order, then commits start/finish (and informational junction
//!   transit) events in time order.
//!
//! ## Why both kernels agree bit-for-bit
//!
//! Float addition is not associative, so the kernel never accumulates
//! report fields in event order. Instead the bind pass computes all
//! timing-independent quantities in program order (legal because the
//! claim queues serialize same-resource instructions in program order),
//! the event loop resolves only start/end/wait times, and finalization
//! replays the per-instruction contributions in program order — the
//! exact float-op sequence of the legacy scan.
//!
//! ## The hook seam
//!
//! [`simulate_des_with_hook`] offers every committed event to an
//! [`EventHook`] in deterministic order. This is the injection point
//! later scenario work (mid-circuit ion loss, collision modelling,
//! calibration drift) builds on; [`NullHook`] is the default no-op.

mod event;
mod kernel;
mod queue;
mod timeline;

pub use event::{Event, EventKind};
pub use queue::EventQueue;
pub use timeline::ResourceTimelines;

use crate::error::SimError;
use crate::report::SimReport;
use qccd_compiler::Executable;
use qccd_device::Device;
use qccd_physics::PhysicalModel;

/// Observer of the kernel's committed event stream.
///
/// Called once per event in commit order (nondecreasing time, FIFO
/// sequence within a tick). Hooks cannot yet alter the schedule — this
/// seam exists so later scenario layers (ion loss, calibration drift)
/// have a deterministic attachment point.
pub trait EventHook {
    /// Observes one committed event.
    fn on_event(&mut self, event: &Event);

    /// Whether this hook wants the event stream at all.
    ///
    /// Returning `false` licenses the kernel to skip materializing
    /// events entirely and resolve timings by a direct worklist
    /// relaxation over the claim queues — the [`SimReport`] is
    /// bit-identical either way (pinned by tests), only the
    /// [`EventHook::on_event`] calls disappear. Defaults to `true`;
    /// [`NullHook`] opts out.
    fn observes_events(&self) -> bool {
        true
    }
}

/// The default hook: ignores every event.
///
/// Declares [`EventHook::observes_events`] `false`, so
/// [`simulate_des`] runs the kernel's heap-free fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHook;

impl EventHook for NullHook {
    fn on_event(&mut self, _event: &Event) {}

    fn observes_events(&self) -> bool {
        false
    }
}

/// Simulates `exe` with the discrete-event kernel.
///
/// Produces a [`SimReport`] field-for-field identical to
/// [`simulate`](crate::simulate) — same values, same bits — for every
/// valid executable, and the identical [`SimError`] for every invalid
/// one.
///
/// # Errors
///
/// Exactly the conditions documented on [`simulate`](crate::simulate).
pub fn simulate_des(
    exe: &Executable,
    device: &Device,
    model: &PhysicalModel,
) -> Result<SimReport, SimError> {
    simulate_des_with_hook(exe, device, model, &mut NullHook)
}

/// [`simulate_des`] with an [`EventHook`] observing every committed
/// event.
///
/// # Errors
///
/// Exactly the conditions documented on [`simulate`](crate::simulate).
/// Validation and binding errors are raised before any event commits,
/// so a hook never observes a partial failed run.
pub fn simulate_des_with_hook(
    exe: &Executable,
    device: &Device,
    model: &PhysicalModel,
    hook: &mut dyn EventHook,
) -> Result<SimReport, SimError> {
    kernel::run(exe, device, model, hook)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use qccd_circuit::{generators, Circuit, Qubit};
    use qccd_compiler::{compile, CompilerConfig};
    use qccd_device::presets;

    fn assert_identical(circuit: &qccd_circuit::Circuit, device: &Device) {
        let model = PhysicalModel::default();
        let exe = compile(circuit, device, &CompilerConfig::default()).expect("compiles");
        let legacy = simulate(&exe, device, &model).expect("legacy simulates");
        let des = simulate_des(&exe, device, &model).expect("des simulates");
        assert_eq!(legacy, des, "kernels diverged on {}", circuit.name());
        // PartialEq checks values; the goldens care about bits.
        assert_eq!(
            serde_json::to_string_pretty(&legacy).unwrap(),
            serde_json::to_string_pretty(&des).unwrap(),
            "kernels bit-diverged on {}",
            circuit.name()
        );
    }

    #[test]
    fn bell_pair_matches_legacy() {
        let mut c = Circuit::new("bell", 2);
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        c.measure_all();
        assert_identical(&c, &presets::l6(20));
    }

    #[test]
    fn shuttling_circuit_matches_legacy() {
        let mut c = Circuit::new("far", 40);
        for i in 0..40 {
            c.h(Qubit(i));
        }
        c.cx(Qubit(0), Qubit(39));
        c.measure_all();
        assert_identical(&c, &presets::l6(12));
    }

    #[test]
    fn congested_random_circuit_matches_legacy() {
        let c = generators::random_circuit(40, 120, 0.8, 9);
        assert_identical(&c, &presets::l6(12));
    }

    #[test]
    fn grid_random_circuit_matches_legacy() {
        let c = generators::random_circuit(30, 200, 0.5, 5);
        assert_identical(&c, &presets::g2x3(10));
    }

    #[test]
    fn empty_executable_yields_zero_report() {
        let exe = qccd_compiler::Executable::new(
            "empty".into(),
            1,
            vec![
                vec![qccd_device::IonId(0)],
                vec![],
                vec![],
                vec![],
                vec![],
                vec![],
            ],
            vec![],
            vec![0],
        );
        let d = presets::l6(10);
        let r = simulate_des(&exe, &d, &PhysicalModel::default()).expect("runs");
        assert_eq!(r.total_time_us, 0.0);
        assert_eq!(r.log_fidelity, 0.0);
        assert_eq!(r, simulate(&exe, &d, &PhysicalModel::default()).unwrap());
    }

    #[test]
    fn hook_sees_paired_events_in_time_order() {
        struct Recorder {
            events: Vec<Event>,
        }
        impl EventHook for Recorder {
            fn on_event(&mut self, event: &Event) {
                self.events.push(*event);
            }
        }
        let c = generators::random_circuit(24, 80, 0.5, 3);
        let d = presets::l6(10);
        let exe = compile(&c, &d, &CompilerConfig::default()).unwrap();
        let mut hook = Recorder { events: Vec::new() };
        simulate_des_with_hook(&exe, &d, &PhysicalModel::default(), &mut hook).unwrap();

        // Commit order: nondecreasing time, ascending seq at ties.
        for w in hook.events.windows(2) {
            assert!(
                w[0].time < w[1].time || (w[0].time == w[1].time && w[0].seq < w[1].seq),
                "events out of order: {w:?}"
            );
        }
        // Every instruction starts exactly once and finishes exactly once,
        // start before finish.
        let mut started = vec![false; exe.len()];
        let mut finished = vec![false; exe.len()];
        for e in &hook.events {
            let i = e.kind.inst();
            if e.kind.is_finish() {
                assert!(started[i] && !finished[i], "{e:?}");
                finished[i] = true;
            } else if !matches!(e.kind, EventKind::JunctionTransit { .. }) {
                assert!(!started[i], "{e:?}");
                started[i] = true;
            } else {
                assert!(started[i] && !finished[i], "transit outside its leg: {e:?}");
            }
        }
        assert!(started.iter().all(|&s| s));
        assert!(finished.iter().all(|&f| f));
        // Junction transits appear iff the executable crosses junctions.
        let transits = hook
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::JunctionTransit { .. }))
            .count();
        assert_eq!(transits, exe.counts().junction_crossings);
    }

    #[test]
    fn unobserved_fast_path_matches_event_loop_bitwise() {
        // A hook that observes (default) forces the full event loop; the
        // NullHook path takes the heap-free relaxation. The reports must
        // agree to the bit on both workload shapes.
        struct Observer(usize);
        impl EventHook for Observer {
            fn on_event(&mut self, _event: &Event) {
                self.0 += 1;
            }
        }
        let model = PhysicalModel::default();
        for (circuit, device) in [
            (generators::qaoa(20, 2, 11), presets::l6(20)),
            (
                generators::random_circuit(30, 200, 0.7, 13),
                presets::g2x3(8),
            ),
        ] {
            let exe = compile(&circuit, &device, &CompilerConfig::default()).expect("compiles");
            let mut hook = Observer(0);
            let looped =
                simulate_des_with_hook(&exe, &device, &model, &mut hook).expect("simulates");
            let relaxed = simulate_des(&exe, &device, &model).expect("simulates");
            assert!(hook.0 > 0, "observer saw the event stream");
            assert_eq!(
                serde_json::to_string_pretty(&looped).unwrap(),
                serde_json::to_string_pretty(&relaxed).unwrap(),
                "paths bit-diverged on {}",
                circuit.name()
            );
        }
    }

    #[test]
    fn malformed_streams_yield_identical_errors() {
        use qccd_device::{IonId, Side, TrapId};
        let exe = Executable::new(
            "bad".into(),
            3,
            vec![
                vec![IonId(0), IonId(1), IonId(2)],
                vec![],
                vec![],
                vec![],
                vec![],
                vec![],
            ],
            vec![qccd_compiler::Inst::Split {
                ion: IonId(1),
                trap: TrapId(0),
                side: Side::Right,
            }],
            vec![0, 1, 2],
        );
        let d = presets::l6(10);
        let m = PhysicalModel::default();
        assert_eq!(
            simulate(&exe, &d, &m).unwrap_err(),
            simulate_des(&exe, &d, &m).unwrap_err()
        );
    }
}
