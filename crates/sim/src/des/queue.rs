//! The pending-event set: a binary min-heap with deterministic ties.
//!
//! Events pop in nondecreasing time; events scheduled for the *same*
//! time pop in the order they were pushed (FIFO), via a monotonically
//! increasing sequence number stamped at push time. Determinism here is
//! load-bearing: the differential harness pins the DES kernel
//! bit-identical to the legacy engine, and any tie-break wobble would
//! surface as hook-order (and, for future scenario hooks, result)
//! nondeterminism.

use super::event::{Event, EventKind};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap of scheduled [`Event`]s ordered by `(time, seq)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Creates an empty queue whose heap can hold `cap` pending events
    /// without reallocating. The kernel pre-sizes to the instruction
    /// count — a comfortable bound on the pending-event high-water mark
    /// in practice — so the heap allocation happens once per run.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at `time`, stamping the next FIFO sequence
    /// number. Returns the stamped number.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN — a NaN timestamp has no place in the
    /// total order and would otherwise sort arbitrarily.
    pub fn push(&mut self, time: f64, kind: EventKind) -> u64 {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { time, seq, kind }));
        seq
    }

    /// Removes and returns the earliest event (`time` ascending, `seq`
    /// ascending within a tick), or `None` when drained.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|e| e.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Heap adapter: `BinaryHeap` is a max-heap, so the ordering is
/// reversed to pop the *smallest* `(time, seq)` first.
#[derive(Debug)]
struct HeapEntry(Event);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    // qccd-lint: allow(float-ordering) — trait plumbing that forwards to the
    // `Ord` impl below, which already compares time via `total_cmp`.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` gives a total order over all non-NaN floats (NaN is
        // rejected at push); reversed on both keys for min-heap behavior.
        other
            .0
            .time
            .total_cmp(&self.0.time)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(inst: usize) -> EventKind {
        EventKind::GateStart { inst }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, k(0));
        q.push(1.0, k(1));
        q.push(2.0, k(2));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.inst())
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5.0, k(i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.inst())
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn seq_numbers_are_monotone_across_times() {
        let mut q = EventQueue::new();
        assert_eq!(q.push(9.0, k(0)), 0);
        assert_eq!(q.push(1.0, k(1)), 1);
        assert_eq!(q.push(1.0, k(2)), 2);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        let first = q.pop().unwrap();
        assert_eq!((first.time, first.seq), (1.0, 1));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_times_are_rejected() {
        EventQueue::new().push(f64::NAN, k(0));
    }

    #[test]
    fn negative_zero_and_zero_tie_break_by_seq() {
        // total_cmp orders -0.0 before +0.0; with equal bit patterns the
        // seq tie-break keeps FIFO order.
        let mut q = EventQueue::new();
        q.push(0.0, k(0));
        q.push(-0.0, k(1));
        q.push(0.0, k(2));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.inst())
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
    }
}
