//! Explicit per-resource timelines: FIFO claim queues plus occupancy.
//!
//! Every schedulable resource — each ion, trap, segment and junction —
//! owns a claim queue populated in *program order* during the bind
//! pass. An instruction may start only when it is at the head of every
//! queue it appears in; it then holds those resources exclusively until
//! its finish event releases them. Because each queue preserves program
//! order, the head-of-all-queues rule cannot deadlock (the earliest
//! unfinished instruction is always eventually at every head) and two
//! instructions can never hold the same segment or junction at once —
//! [`ResourceTimelines::reserve`] panics on any attempted double-book.
//!
//! The kernel's protocol is two-phase — every [`ResourceTimelines::enqueue`]
//! happens during the bind pass, before any grant — so the queues are
//! stored flat: claims are staged as `(resource, instruction)` pairs and
//! [`ResourceTimelines::seal`] counting-sorts them (stably, preserving
//! FIFO order) into one CSR-style arena with a per-resource pop cursor.
//! No per-resource `VecDeque` allocations, and occupancy is one bit per
//! resource.

use fixedbitset::FixedBitSet;

/// Sentinel in the holder table for "nobody holds this resource".
const NO_HOLDER: u32 = u32::MAX;

/// FIFO claim queues and occupancy state for a flat-indexed resource
/// space.
#[derive(Debug)]
pub struct ResourceTimelines {
    /// Per resource: the time its last released holder finished.
    free_at: Vec<f64>,
    /// Per resource: one bit, set while the resource is held.
    busy: FixedBitSet,
    /// Per resource: the instruction currently holding it (`NO_HOLDER`
    /// if free).
    holder: Vec<u32>,
    /// Claims staged by [`ResourceTimelines::enqueue`], in program
    /// order, until [`ResourceTimelines::seal`] sorts them into `items`.
    staged: Vec<(u32, u32)>,
    /// CSR row starts into `items`, one per resource plus a final end.
    offsets: Vec<u32>,
    /// All claims, grouped by resource, program order within each group.
    items: Vec<u32>,
    /// Per resource: absolute index of the current queue head in
    /// `items`; popping advances it toward `offsets[r + 1]`.
    cursor: Vec<u32>,
    sealed: bool,
}

impl ResourceTimelines {
    /// Creates timelines for `resources` resources, all free at t = 0.
    pub fn new(resources: usize) -> Self {
        ResourceTimelines {
            free_at: vec![0.0; resources],
            busy: FixedBitSet::with_capacity(resources),
            holder: vec![NO_HOLDER; resources],
            staged: Vec::new(),
            offsets: Vec::new(),
            items: Vec::new(),
            cursor: Vec::new(),
            sealed: false,
        }
    }

    /// Appends `inst` to resource `r`'s claim queue. Must be called in
    /// program order during the bind pass, before [`ResourceTimelines::seal`].
    ///
    /// # Panics
    ///
    /// Panics if the timelines are already sealed.
    pub fn enqueue(&mut self, r: usize, inst: usize) {
        assert!(!self.sealed, "enqueue after seal");
        self.staged.push((r as u32, inst as u32));
    }

    /// Freezes the claim queues: distributes the staged claims into the
    /// per-resource CSR rows (a stable counting sort, so each queue
    /// keeps program order) and enables `head`/`reserve`/`release`.
    pub fn seal(&mut self) {
        assert!(!self.sealed, "seal called twice");
        self.sealed = true;
        let n = self.free_at.len();
        let mut counts = vec![0u32; n + 1];
        for &(r, _) in &self.staged {
            counts[r as usize + 1] += 1;
        }
        for r in 0..n {
            counts[r + 1] += counts[r];
        }
        self.offsets = counts;
        let mut fill: Vec<u32> = self.offsets[..n].to_vec();
        self.items = vec![0; self.staged.len()];
        for &(r, inst) in &self.staged {
            self.items[fill[r as usize] as usize] = inst;
            fill[r as usize] += 1;
        }
        self.cursor = self.offsets[..n].to_vec();
        self.staged = Vec::new();
    }

    fn assert_sealed(&self) {
        debug_assert!(self.sealed, "claim queues consulted before seal");
    }

    /// The next claimant of `r` (possibly the current holder).
    pub fn head(&self, r: usize) -> Option<usize> {
        self.assert_sealed();
        let c = self.cursor[r];
        if c < self.offsets[r + 1] {
            Some(self.items[c as usize] as usize)
        } else {
            None
        }
    }

    /// The finish time of `r`'s last released holder.
    pub fn free_at(&self, r: usize) -> f64 {
        self.free_at[r]
    }

    /// The instruction currently holding `r`, if any.
    pub fn holder(&self, r: usize) -> Option<usize> {
        if self.busy.contains(r) {
            Some(self.holder[r] as usize)
        } else {
            None
        }
    }

    /// Marks `inst` as holding `r` exclusively.
    ///
    /// # Panics
    ///
    /// Panics if `r` is already held (a double-book) or if `inst` is not
    /// at the head of `r`'s claim queue (a FIFO violation). Both would
    /// silently corrupt timing, so they are hard errors.
    pub fn reserve(&mut self, r: usize, inst: usize) {
        if self.busy.contains(r) {
            let other = self.holder[r];
            panic!("resource {r} double-booked: inst {inst} vs holder {other}");
        }
        assert_eq!(
            self.head(r),
            Some(inst),
            "inst {inst} reserved resource {r} out of queue order"
        );
        self.busy.insert(r);
        self.holder[r] = inst as u32;
    }

    /// Grants and immediately releases `r` for `inst` at time `end`, as
    /// the kernel's unobserved relaxation does — the hold collapses to a
    /// point, so the occupancy bit and holder table are never touched.
    /// Equivalent to [`ResourceTimelines::reserve`] followed by
    /// [`ResourceTimelines::release`], with the exclusivity invariants
    /// demoted to debug assertions (the relaxation only processes fully
    /// granted instructions, which makes violations unreachable).
    /// Returns the next claimant (the new head), if any.
    pub fn pass_through(&mut self, r: usize, inst: usize, end: f64) -> Option<usize> {
        debug_assert!(!self.busy.contains(r), "resource {r} is held");
        debug_assert_eq!(
            self.head(r),
            Some(inst),
            "inst {inst} passed through resource {r} out of queue order"
        );
        self.cursor[r] += 1;
        self.free_at[r] = end;
        self.head(r)
    }

    /// Releases `r` at time `end`, pops `inst` from the queue head, and
    /// returns the next claimant (the new head), if any.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not the current holder.
    pub fn release(&mut self, r: usize, inst: usize, end: f64) -> Option<usize> {
        assert_eq!(
            self.holder(r),
            Some(inst),
            "inst {inst} released resource {r} it does not hold"
        );
        self.busy.remove(r);
        self.holder[r] = NO_HOLDER;
        debug_assert_eq!(self.head(r), Some(inst));
        self.cursor[r] += 1;
        self.free_at[r] = end;
        self.head(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_grant_and_release_cycle() {
        let mut tl = ResourceTimelines::new(2);
        tl.enqueue(0, 0);
        tl.enqueue(0, 1);
        tl.enqueue(1, 1);
        tl.seal();
        assert_eq!(tl.head(0), Some(0));
        tl.reserve(0, 0);
        assert_eq!(tl.holder(0), Some(0));
        // Head stays 0 while executing.
        assert_eq!(tl.head(0), Some(0));
        let next = tl.release(0, 0, 12.5);
        assert_eq!(next, Some(1));
        assert_eq!(tl.free_at(0), 12.5);
        assert_eq!(tl.holder(0), None);
        tl.reserve(0, 1);
        tl.reserve(1, 1);
        assert_eq!(tl.release(0, 1, 20.0), None);
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn double_booking_panics() {
        let mut tl = ResourceTimelines::new(1);
        tl.enqueue(0, 0);
        tl.enqueue(0, 1);
        tl.seal();
        tl.reserve(0, 0);
        tl.reserve(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of queue order")]
    fn out_of_order_reserve_panics() {
        let mut tl = ResourceTimelines::new(1);
        tl.enqueue(0, 0);
        tl.enqueue(0, 1);
        tl.seal();
        tl.reserve(0, 1);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn releasing_unheld_resource_panics() {
        let mut tl = ResourceTimelines::new(1);
        tl.enqueue(0, 0);
        tl.seal();
        tl.release(0, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "enqueue after seal")]
    fn enqueue_after_seal_panics() {
        let mut tl = ResourceTimelines::new(1);
        tl.seal();
        tl.enqueue(0, 0);
    }

    #[test]
    fn free_at_starts_at_zero() {
        let mut tl = ResourceTimelines::new(3);
        tl.seal();
        for r in 0..3 {
            assert_eq!(tl.free_at(r), 0.0);
            assert_eq!(tl.head(r), None);
            assert_eq!(tl.holder(r), None);
        }
    }

    #[test]
    fn pass_through_pops_and_stamps_like_reserve_release() {
        let mut tl = ResourceTimelines::new(1);
        tl.enqueue(0, 0);
        tl.enqueue(0, 1);
        tl.seal();
        assert_eq!(tl.pass_through(0, 0, 3.5), Some(1));
        assert_eq!(tl.free_at(0), 3.5);
        assert_eq!(tl.holder(0), None);
        assert_eq!(tl.pass_through(0, 1, 7.0), None);
        assert_eq!(tl.free_at(0), 7.0);
    }

    #[test]
    fn seal_groups_interleaved_claims_in_program_order() {
        let mut tl = ResourceTimelines::new(3);
        // Claims interleaved across resources, as the bind pass emits
        // them: each queue must come out in program order.
        for (r, i) in [(2, 0), (0, 1), (2, 1), (1, 2), (0, 3), (2, 4)] {
            tl.enqueue(r, i);
        }
        tl.seal();
        assert_eq!(tl.head(0), Some(1));
        assert_eq!(tl.head(1), Some(2));
        assert_eq!(tl.head(2), Some(0));
        tl.reserve(2, 0);
        assert_eq!(tl.release(2, 0, 1.0), Some(1));
        tl.reserve(2, 1);
        assert_eq!(tl.release(2, 1, 2.0), Some(4));
    }
}
