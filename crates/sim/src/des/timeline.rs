//! Explicit per-resource timelines: FIFO claim queues plus occupancy.
//!
//! Every schedulable resource — each ion, trap, segment and junction —
//! owns a claim queue populated in *program order* during the bind
//! pass. An instruction may start only when it is at the head of every
//! queue it appears in; it then holds those resources exclusively until
//! its finish event releases them. Because each queue preserves program
//! order, the head-of-all-queues rule cannot deadlock (the earliest
//! unfinished instruction is always eventually at every head) and two
//! instructions can never hold the same segment or junction at once —
//! [`ResourceTimelines::reserve`] panics on any attempted double-book.

use std::collections::VecDeque;

/// FIFO claim queues and occupancy state for a flat-indexed resource
/// space.
#[derive(Debug)]
pub struct ResourceTimelines {
    /// Per resource: the time its last released holder finished.
    free_at: Vec<f64>,
    /// Per resource: the instruction currently holding it, if any.
    holder: Vec<Option<usize>>,
    /// Per resource: pending claimants, in program order. The head may
    /// be executing (it stays queued until released).
    queues: Vec<VecDeque<usize>>,
}

impl ResourceTimelines {
    /// Creates timelines for `resources` resources, all free at t = 0.
    pub fn new(resources: usize) -> Self {
        ResourceTimelines {
            free_at: vec![0.0; resources],
            holder: vec![None; resources],
            queues: vec![VecDeque::new(); resources],
        }
    }

    /// Appends `inst` to resource `r`'s claim queue. Must be called in
    /// program order during the bind pass.
    pub fn enqueue(&mut self, r: usize, inst: usize) {
        self.queues[r].push_back(inst);
    }

    /// The next claimant of `r` (possibly the current holder).
    pub fn head(&self, r: usize) -> Option<usize> {
        self.queues[r].front().copied()
    }

    /// The finish time of `r`'s last released holder.
    pub fn free_at(&self, r: usize) -> f64 {
        self.free_at[r]
    }

    /// The instruction currently holding `r`, if any.
    pub fn holder(&self, r: usize) -> Option<usize> {
        self.holder[r]
    }

    /// Marks `inst` as holding `r` exclusively.
    ///
    /// # Panics
    ///
    /// Panics if `r` is already held (a double-book) or if `inst` is not
    /// at the head of `r`'s claim queue (a FIFO violation). Both would
    /// silently corrupt timing, so they are hard errors.
    pub fn reserve(&mut self, r: usize, inst: usize) {
        if let Some(other) = self.holder[r] {
            panic!("resource {r} double-booked: inst {inst} vs holder {other}");
        }
        assert_eq!(
            self.head(r),
            Some(inst),
            "inst {inst} reserved resource {r} out of queue order"
        );
        self.holder[r] = Some(inst);
    }

    /// Releases `r` at time `end`, pops `inst` from the queue head, and
    /// returns the next claimant (the new head), if any.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not the current holder.
    pub fn release(&mut self, r: usize, inst: usize, end: f64) -> Option<usize> {
        assert_eq!(
            self.holder[r],
            Some(inst),
            "inst {inst} released resource {r} it does not hold"
        );
        self.holder[r] = None;
        let popped = self.queues[r].pop_front();
        debug_assert_eq!(popped, Some(inst));
        self.free_at[r] = end;
        self.head(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_grant_and_release_cycle() {
        let mut tl = ResourceTimelines::new(2);
        tl.enqueue(0, 0);
        tl.enqueue(0, 1);
        tl.enqueue(1, 1);
        assert_eq!(tl.head(0), Some(0));
        tl.reserve(0, 0);
        assert_eq!(tl.holder(0), Some(0));
        // Head stays 0 while executing.
        assert_eq!(tl.head(0), Some(0));
        let next = tl.release(0, 0, 12.5);
        assert_eq!(next, Some(1));
        assert_eq!(tl.free_at(0), 12.5);
        assert_eq!(tl.holder(0), None);
        tl.reserve(0, 1);
        tl.reserve(1, 1);
        assert_eq!(tl.release(0, 1, 20.0), None);
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn double_booking_panics() {
        let mut tl = ResourceTimelines::new(1);
        tl.enqueue(0, 0);
        tl.enqueue(0, 1);
        tl.reserve(0, 0);
        tl.reserve(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of queue order")]
    fn out_of_order_reserve_panics() {
        let mut tl = ResourceTimelines::new(1);
        tl.enqueue(0, 0);
        tl.enqueue(0, 1);
        tl.reserve(0, 1);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn releasing_unheld_resource_panics() {
        let mut tl = ResourceTimelines::new(1);
        tl.enqueue(0, 0);
        tl.release(0, 0, 1.0);
    }

    #[test]
    fn free_at_starts_at_zero() {
        let tl = ResourceTimelines::new(3);
        for r in 0..3 {
            assert_eq!(tl.free_at(r), 0.0);
            assert_eq!(tl.head(r), None);
            assert_eq!(tl.holder(r), None);
        }
    }
}
