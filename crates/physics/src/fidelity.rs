//! Gate fidelity model — equation (1) of the paper (§VII-C).
//!
//! `F = 1 − Γτ − A(2n̄+1)` where
//!
//! * `Γ` is the background heating rate of the trap: a gate fails if a
//!   background heating event lands during it, so the error grows linearly
//!   with gate duration τ;
//! * `A ∝ N/ln N` captures thermal laser-beam instabilities, which worsen
//!   with the chain size `N` (the §IX-A analysis — "laser beam
//!   instabilities increase the contribution of motional mode error by
//!   1.5× as the trap capacity increases to 35 ions" — pins the `N/ln N`
//!   form: `(35/ln 35)/(20/ln 20) ≈ 1.48`);
//! * `n̄` is the chain's motional energy in quanta, accumulated from
//!   shuttling per [`crate::HeatingModel`].
//!
//! Calibration: the paper does not print Γ or the proportionality constant
//! `A₀`. The defaults below (Γ = 1 quanta/s, A₀ = 1e-5) were fitted against
//! the Fig. 6 study at paper scale (see EXPERIMENTS.md): the mean two-qubit
//! error at the capacity sweet spot lands near 1e-3 (Supremacy fidelity in
//! the 0.1–0.3 band, QAOA ≈0.4, BV ≈0.8), and on heated chains the
//! background term sits well below the motional term as in Fig. 6g. Both
//! constants are configurable.
//!
//! The n̄ supplied by the simulator is the *per-mode* occupation: the
//! chain's accumulated shuttling energy spread over its N motional modes.

use serde::{Deserialize, Serialize};

/// The two error contributions of equation (1), as plotted in Fig. 6g.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ErrorBreakdown {
    /// Background-heating term Γτ.
    pub background: f64,
    /// Motional/beam-instability term A(N)·(2n̄+1).
    pub motional: f64,
}

impl ErrorBreakdown {
    /// Total error probability, clamped to `[0, 1]`.
    pub fn total(&self) -> f64 {
        (self.background + self.motional).clamp(0.0, 1.0)
    }

    /// Gate fidelity `1 − total()`.
    pub fn fidelity(&self) -> f64 {
        1.0 - self.total()
    }
}

/// Parameters of the fidelity model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityModel {
    /// Background heating rate Γ, in quanta per second.
    pub gamma_per_s: f64,
    /// Proportionality constant of the beam-instability factor
    /// `A(N) = a0 · N / ln N`.
    pub a0: f64,
    /// Fixed error of a single-qubit gate (not modelled by eq. 1; the
    /// paper's fidelity product includes every operation).
    pub one_qubit_error: f64,
    /// Fixed error of a measurement. Defaults to 0 — see DESIGN.md §2 for
    /// why the paper's fidelity plots imply measurement error was not
    /// charged.
    pub measure_error: f64,
}

impl FidelityModel {
    /// The calibrated defaults described in the module documentation.
    pub const PAPER: FidelityModel = FidelityModel {
        gamma_per_s: 1.0,
        a0: 1.0e-5,
        one_qubit_error: 1.0e-4,
        measure_error: 0.0,
    };

    /// The beam-instability scaling factor `A(N) = a0·N/ln N`.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len < 2` (eq. 1 applies to two-qubit gates, which
    /// need at least two ions).
    pub fn beam_instability(&self, chain_len: u32) -> f64 {
        assert!(
            chain_len >= 2,
            "beam instability defined for chains of 2+ ions"
        );
        let n = f64::from(chain_len);
        self.a0 * n / n.ln()
    }

    /// Checks physical plausibility (non-negative finite rates, fixed
    /// error probabilities inside `[0, 1]`), for the JSON loading path.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("gamma_per_s", self.gamma_per_s), ("a0", self.a0)] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "fidelity `{name}` must be finite and >= 0, got {v}"
                ));
            }
        }
        for (name, v) in [
            ("one_qubit_error", self.one_qubit_error),
            ("measure_error", self.measure_error),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(format!(
                    "fidelity `{name}` must be a probability in [0, 1], got {v}"
                ));
            }
        }
        Ok(())
    }

    /// Error breakdown for a two-qubit MS gate of duration `tau_us` (µs)
    /// in a chain of `chain_len` ions at motional energy `nbar` quanta.
    pub fn two_qubit_error(&self, tau_us: f64, chain_len: u32, nbar: f64) -> ErrorBreakdown {
        debug_assert!(tau_us >= 0.0 && nbar >= 0.0);
        ErrorBreakdown {
            background: self.gamma_per_s * 1.0e-6 * tau_us,
            motional: self.beam_instability(chain_len) * (2.0 * nbar + 1.0),
        }
    }
}

impl Default for FidelityModel {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beam_instability_grows_1_5x_from_20_to_35_ions() {
        // The §IX-A observation that pins A ∝ N/ln N.
        let f = FidelityModel::default();
        let ratio = f.beam_instability(35) / f.beam_instability(20);
        assert!((ratio - 1.5).abs() < 0.05, "ratio was {ratio}");
    }

    #[test]
    fn background_term_is_linear_in_duration() {
        let f = FidelityModel::default();
        let e1 = f.two_qubit_error(100.0, 10, 0.0).background;
        let e2 = f.two_qubit_error(200.0, 10, 0.0).background;
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
        // Γ = 1 quanta/s at 100 µs → 1e-4.
        assert!((e1 - 1.0e-4).abs() < 1e-15);
    }

    #[test]
    fn motional_term_is_linear_in_nbar() {
        let f = FidelityModel::default();
        let a = f.beam_instability(20);
        let e = f.two_qubit_error(100.0, 20, 3.0).motional;
        assert!((e - a * 7.0).abs() < 1e-15);
    }

    #[test]
    fn cold_chain_still_has_motional_floor() {
        // (2n̄+1) = 1 at n̄ = 0: the zero-point term.
        let f = FidelityModel::default();
        let e = f.two_qubit_error(100.0, 20, 0.0);
        assert!(e.motional > 0.0);
    }

    #[test]
    fn calibration_target_mean_error_at_sweet_spot() {
        // ~1e-3 two-qubit error at N = 20, modest heating (per-mode
        // n̄ ≈ 4), FM-like duration: the DESIGN.md calibration anchor.
        let f = FidelityModel::default();
        let e = f.two_qubit_error(212.6, 20, 4.0).total();
        assert!(e > 2.0e-4 && e < 5.0e-3, "error was {e}");
    }

    #[test]
    fn background_is_minor_contributor_on_heated_chains_fig6g() {
        let f = FidelityModel::default();
        let e = f.two_qubit_error(212.6, 20, 8.0);
        assert!(
            e.motional > 5.0 * e.background,
            "motional {} vs background {}",
            e.motional,
            e.background
        );
    }

    #[test]
    fn total_error_clamps_at_one() {
        let f = FidelityModel::default();
        let e = f.two_qubit_error(1.0e9, 20, 1.0e9);
        assert_eq!(e.total(), 1.0);
        assert_eq!(e.fidelity(), 0.0);
    }

    #[test]
    #[should_panic(expected = "2+ ions")]
    fn one_ion_chain_panics() {
        let _ = FidelityModel::default().beam_instability(1);
    }
}
