//! Shuttling operation durations (Table I).
//!
//! "In Table I we give the times for the various shuttling operations,
//! obtained from real characterization experiments" (§VII-B, constants
//! summarized from Gutiérrez, Müller, Bermúdez PRA 2019). The physical
//! ion-rotation time used by IS chain reordering comes from Kaufmann et
//! al.'s fast-ion-swapping demonstration (paper reference 63).

use serde::{Deserialize, Serialize};

/// Durations (µs) of the primitive shuttling operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShuttleTimes {
    /// Moving an ion through one unit segment.
    pub move_per_segment: f64,
    /// Splitting an ion off a chain.
    pub split: f64,
    /// Merging an ion into a chain.
    pub merge: f64,
    /// Crossing a 3-way (Y) junction.
    pub junction_y: f64,
    /// Crossing a 4-way (X) junction.
    pub junction_x: f64,
    /// Physically rotating an adjacent ion pair by 180° (the IS reordering
    /// primitive; not in Table I — from Kaufmann et al. 2017).
    pub ion_rotation: f64,
}

impl ShuttleTimes {
    /// The exact Table I values.
    pub const TABLE_I: ShuttleTimes = ShuttleTimes {
        move_per_segment: 5.0,
        split: 80.0,
        merge: 80.0,
        junction_y: 100.0,
        junction_x: 120.0,
        ion_rotation: 42.0,
    };

    /// Duration of an in-flight move over `segments` unit segments
    /// crossing `y_junctions` 3-way and `x_junctions` 4-way junctions.
    pub fn move_time(&self, segments: u32, y_junctions: u32, x_junctions: u32) -> f64 {
        self.move_per_segment * f64::from(segments)
            + self.junction_y * f64::from(y_junctions)
            + self.junction_x * f64::from(x_junctions)
    }

    /// Duration of one IS adjacent-pair exchange: split, 180° rotation,
    /// merge (paper §IV-C).
    pub fn ion_swap_time(&self) -> f64 {
        self.split + self.ion_rotation + self.merge
    }

    /// Checks physical plausibility (all durations finite and
    /// non-negative, per-segment motion strictly positive), for the
    /// JSON loading path.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("move_per_segment", self.move_per_segment),
            ("split", self.split),
            ("merge", self.merge),
            ("junction_y", self.junction_y),
            ("junction_x", self.junction_x),
            ("ion_rotation", self.ion_rotation),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "shuttle time `{name}` must be finite and >= 0, got {v}"
                ));
            }
        }
        if self.move_per_segment == 0.0 {
            return Err("shuttle time `move_per_segment` must be > 0".into());
        }
        Ok(())
    }
}

impl Default for ShuttleTimes {
    fn default() -> Self {
        Self::TABLE_I
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values_are_the_published_ones() {
        let t = ShuttleTimes::default();
        assert_eq!(t.move_per_segment, 5.0);
        assert_eq!(t.split, 80.0);
        assert_eq!(t.merge, 80.0);
        assert_eq!(t.junction_y, 100.0);
        assert_eq!(t.junction_x, 120.0);
    }

    #[test]
    fn move_time_adds_components() {
        let t = ShuttleTimes::default();
        assert_eq!(t.move_time(4, 0, 0), 20.0);
        assert_eq!(t.move_time(4, 1, 0), 120.0);
        assert_eq!(t.move_time(2, 0, 2), 250.0);
    }

    #[test]
    fn ion_swap_combines_split_rotate_merge() {
        let t = ShuttleTimes::default();
        assert_eq!(t.ion_swap_time(), 80.0 + 42.0 + 80.0);
    }

    #[test]
    fn custom_times_flow_through() {
        let t = ShuttleTimes {
            move_per_segment: 1.0,
            ..ShuttleTimes::default()
        };
        assert_eq!(t.move_time(10, 0, 0), 10.0);
    }
}
