//! The aggregate physical model handed to the compiler and simulator.

use crate::fidelity::FidelityModel;
use crate::gate_time::GateImpl;
use crate::heating::HeatingModel;
use crate::shuttle::ShuttleTimes;
use serde::{Deserialize, Serialize};

/// Everything the toolflow needs to know about the hardware's physics:
/// Fig. 3's "TI performance and noise models" box.
///
/// The microarchitectural *gate implementation* choice (§IV-C) lives here;
/// the *chain reordering* choice is a compiler policy and lives in
/// `qccd-compiler`.
///
/// # Example
///
/// ```
/// use qccd_physics::{GateImpl, PhysicalModel};
///
/// let model = PhysicalModel::with_gate(GateImpl::Am2);
/// // Adjacent ions in a 20-ion chain: AM2 is fast at short range.
/// assert_eq!(model.two_qubit_time(1, 20), 48.0);
/// // A SWAP costs three MS gates.
/// assert_eq!(model.swap_time(1, 20), 3.0 * 48.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalModel {
    /// Which MS gate implementation the device uses.
    pub gate_impl: GateImpl,
    /// Shuttling operation durations (Table I).
    pub shuttle: ShuttleTimes,
    /// Motional heating parameters.
    pub heating: HeatingModel,
    /// Fidelity parameters (eq. 1).
    pub fidelity: FidelityModel,
    /// Single-qubit gate duration in µs (not printed in the paper; typical
    /// hyperfine-qubit Raman gates are a few µs).
    pub one_qubit_time: f64,
    /// Measurement duration in µs (state-dependent fluorescence readout).
    pub measure_time: f64,
}

/// Error from [`PhysicalModel::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelJsonError {
    /// The text is not valid JSON or not shaped like a physical model.
    Parse(String),
    /// Well-formed model JSON with physically implausible constants
    /// (negative times, non-finite rates, out-of-range probabilities).
    Invalid(String),
}

impl std::fmt::Display for ModelJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelJsonError::Parse(m) => write!(f, "physical model JSON parse error: {m}"),
            ModelJsonError::Invalid(m) => write!(f, "invalid physical model: {m}"),
        }
    }
}

impl std::error::Error for ModelJsonError {}

impl PhysicalModel {
    /// The paper's configuration with the given gate implementation.
    pub fn with_gate(gate_impl: GateImpl) -> Self {
        PhysicalModel {
            gate_impl,
            ..PhysicalModel::default()
        }
    }

    /// Loads a model from its JSON serialization (the format written by
    /// `serde_json::to_string_pretty(&model)`), validating every
    /// constant before returning it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelJsonError::Parse`] for malformed JSON or wrong
    /// shape and [`ModelJsonError::Invalid`] for implausible constants
    /// — never panics on untrusted input.
    ///
    /// # Example
    ///
    /// ```
    /// use qccd_physics::{GateImpl, PhysicalModel};
    ///
    /// let json = serde_json::to_string_pretty(&PhysicalModel::with_gate(GateImpl::Pm)).unwrap();
    /// let loaded = PhysicalModel::from_json(&json).unwrap();
    /// assert_eq!(loaded.gate_impl, GateImpl::Pm);
    /// ```
    pub fn from_json(text: &str) -> Result<PhysicalModel, ModelJsonError> {
        let model: PhysicalModel =
            serde_json::from_str(text).map_err(|e| ModelJsonError::Parse(e.to_string()))?;
        model.validate().map_err(ModelJsonError::Invalid)?;
        Ok(model)
    }

    /// Checks physical plausibility of every constant, delegating to the
    /// submodels' `validate` methods.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.shuttle.validate()?;
        self.heating.validate()?;
        self.fidelity.validate()?;
        if !self.one_qubit_time.is_finite() || self.one_qubit_time <= 0.0 {
            return Err(format!(
                "`one_qubit_time` must be finite and > 0, got {}",
                self.one_qubit_time
            ));
        }
        if !self.measure_time.is_finite() || self.measure_time < 0.0 {
            return Err(format!(
                "`measure_time` must be finite and >= 0, got {}",
                self.measure_time
            ));
        }
        Ok(())
    }

    /// Duration (µs) of a native MS gate at `distance` ion separation in a
    /// chain of `chain_len` ions.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GateImpl::two_qubit_time`].
    pub fn two_qubit_time(&self, distance: u32, chain_len: u32) -> f64 {
        self.gate_impl.two_qubit_time(distance, chain_len)
    }

    /// Duration (µs) of a gate-based SWAP: 3 MS gates at the pair's
    /// separation (§IV-C, Fig. 5).
    pub fn swap_time(&self, distance: u32, chain_len: u32) -> f64 {
        3.0 * self.two_qubit_time(distance, chain_len)
    }

    /// Error probability of a native MS gate (eq. 1).
    pub fn two_qubit_error(&self, distance: u32, chain_len: u32, nbar: f64) -> f64 {
        self.fidelity
            .two_qubit_error(self.two_qubit_time(distance, chain_len), chain_len, nbar)
            .total()
    }
}

impl Default for PhysicalModel {
    /// FM gates with Table I shuttle times and the paper's heating and
    /// (calibrated) fidelity constants — the configuration of Figs. 6–7.
    fn default() -> Self {
        PhysicalModel {
            gate_impl: GateImpl::Fm,
            shuttle: ShuttleTimes::TABLE_I,
            heating: HeatingModel::PAPER,
            fidelity: FidelityModel::PAPER,
            one_qubit_time: 5.0,
            measure_time: 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_fig6_configuration() {
        let m = PhysicalModel::default();
        assert_eq!(m.gate_impl, GateImpl::Fm);
        assert_eq!(m.shuttle, ShuttleTimes::TABLE_I);
        assert_eq!(m.heating, HeatingModel::PAPER);
    }

    #[test]
    fn with_gate_overrides_only_the_gate() {
        let m = PhysicalModel::with_gate(GateImpl::Pm);
        assert_eq!(m.gate_impl, GateImpl::Pm);
        assert_eq!(m.shuttle, ShuttleTimes::TABLE_I);
    }

    #[test]
    fn swap_is_three_ms_gates() {
        let m = PhysicalModel::with_gate(GateImpl::Am1);
        assert_eq!(m.swap_time(4, 10), 3.0 * m.two_qubit_time(4, 10));
    }

    #[test]
    fn error_increases_with_heat() {
        let m = PhysicalModel::default();
        assert!(m.two_qubit_error(1, 20, 50.0) > m.two_qubit_error(1, 20, 0.0));
    }

    #[test]
    fn serde_round_trip() {
        for gate in GateImpl::ALL {
            let m = PhysicalModel::with_gate(gate);
            let json = serde_json::to_string_pretty(&m).unwrap();
            assert_eq!(PhysicalModel::from_json(&json).unwrap(), m);
        }
    }

    #[test]
    fn from_json_rejects_implausible_constants() {
        let good = serde_json::to_string(&PhysicalModel::default()).unwrap();
        for (needle, replacement, expect) in [
            (
                "\"one_qubit_time\":5.0",
                "\"one_qubit_time\":0.0",
                "one_qubit_time",
            ),
            ("\"split\":80.0", "\"split\":-1.0", "split"),
            ("\"k1\":0.1", "\"k1\":-0.1", "k1"),
            ("\"chain_ref\":10.0", "\"chain_ref\":0.0", "chain_ref"),
            (
                "\"one_qubit_error\":0.0001",
                "\"one_qubit_error\":2.0",
                "one_qubit_error",
            ),
        ] {
            let bad = good.replacen(needle, replacement, 1);
            assert_ne!(bad, good, "tamper pattern `{needle}` did not apply");
            match PhysicalModel::from_json(&bad) {
                Err(ModelJsonError::Invalid(m)) => {
                    assert!(m.contains(expect), "message `{m}` missing `{expect}`")
                }
                other => panic!("tamper `{needle}`: expected Invalid, got {other:?}"),
            }
        }
        assert!(matches!(
            PhysicalModel::from_json("[]"),
            Err(ModelJsonError::Parse(_))
        ));
    }
}
