//! Two-qubit gate duration models (§VII-A).
//!
//! The paper considers four implementations of the Mølmer–Sørensen gate,
//! differing in which laser parameter is modulated for robustness across
//! motional modes:
//!
//! | Impl | Source                  | Duration (µs)              | Depends on |
//! |------|-------------------------|----------------------------|------------|
//! | AM1  | Wu, Wang, Duan 2018     | `100·d − 22`               | separation |
//! | AM2  | Trout et al. 2018       | `38·d + 10`                | separation |
//! | PM   | Milne et al. 2018       | `5·d + 160`                | separation |
//! | FM   | Leung et al. 2018       | `max(13.33·N − 54, 100)`   | chain size |
//!
//! `d ≥ 1` is the distance in chain positions between the two ions, `N` the
//! number of ions in the chain. AM/PM durations grow with separation
//! because the ion–ion coupling strength falls off with distance; FM
//! durations grow with chain size because the modulation must track the
//! denser motional-mode spectrum (§III-A).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A Mølmer–Sørensen two-qubit gate implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateImpl {
    /// Amplitude modulation, robust variant (slower).
    Am1,
    /// Amplitude modulation, fast variant.
    Am2,
    /// Phase modulation: weak distance dependence.
    Pm,
    /// Frequency modulation: distance-independent, chain-size dependent.
    Fm,
}

impl GateImpl {
    /// All four implementations, in the paper's order.
    pub const ALL: [GateImpl; 4] = [GateImpl::Am1, GateImpl::Am2, GateImpl::Pm, GateImpl::Fm];

    /// Duration in µs of an MS gate between two ions separated by
    /// `distance` chain positions inside a chain of `chain_len` ions.
    ///
    /// # Panics
    ///
    /// Panics if `distance == 0` (the two ions coincide) or
    /// `chain_len < 2`.
    pub fn two_qubit_time(&self, distance: u32, chain_len: u32) -> f64 {
        assert!(distance >= 1, "ion separation must be at least 1");
        assert!(
            chain_len >= 2,
            "a two-qubit gate needs a chain of at least 2 ions"
        );
        debug_assert!(
            distance < chain_len,
            "separation {distance} impossible in chain of {chain_len}"
        );
        let d = f64::from(distance);
        let n = f64::from(chain_len);
        match self {
            GateImpl::Am1 => 100.0 * d - 22.0,
            GateImpl::Am2 => 38.0 * d + 10.0,
            GateImpl::Pm => 5.0 * d + 160.0,
            GateImpl::Fm => (13.33 * n - 54.0).max(100.0),
        }
    }

    /// Whether gate duration depends on the separation of the two ions.
    pub fn is_distance_dependent(&self) -> bool {
        !matches!(self, GateImpl::Fm)
    }

    /// Canonical upper-case name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            GateImpl::Am1 => "AM1",
            GateImpl::Am2 => "AM2",
            GateImpl::Pm => "PM",
            GateImpl::Fm => "FM",
        }
    }
}

impl fmt::Display for GateImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown gate-implementation name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateImplError {
    name: String,
}

impl fmt::Display for ParseGateImplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown gate implementation `{}` (expected AM1, AM2, PM or FM)",
            self.name
        )
    }
}

impl std::error::Error for ParseGateImplError {}

impl FromStr for GateImpl {
    type Err = ParseGateImplError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AM1" => Ok(GateImpl::Am1),
            "AM2" => Ok(GateImpl::Am2),
            "PM" => Ok(GateImpl::Pm),
            "FM" => Ok(GateImpl::Fm),
            other => Err(ParseGateImplError {
                name: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn am1_matches_published_form() {
        assert_eq!(GateImpl::Am1.two_qubit_time(1, 2), 78.0);
        assert_eq!(GateImpl::Am1.two_qubit_time(10, 20), 978.0);
    }

    #[test]
    fn am2_matches_published_form() {
        assert_eq!(GateImpl::Am2.two_qubit_time(1, 2), 48.0);
        assert_eq!(GateImpl::Am2.two_qubit_time(5, 10), 200.0);
    }

    #[test]
    fn pm_matches_published_form() {
        assert_eq!(GateImpl::Pm.two_qubit_time(1, 2), 165.0);
        assert_eq!(GateImpl::Pm.two_qubit_time(20, 30), 260.0);
    }

    #[test]
    fn fm_floor_and_linear_regime() {
        // Below 12 ions the paper pins FM at 100 µs.
        for n in 2..=11u32 {
            assert_eq!(GateImpl::Fm.two_qubit_time(1, n), 100.0);
        }
        let t20 = GateImpl::Fm.two_qubit_time(1, 20);
        assert!((t20 - (13.33 * 20.0 - 54.0)).abs() < 1e-9);
    }

    #[test]
    fn fm_is_distance_independent_am_is_not() {
        assert_eq!(
            GateImpl::Fm.two_qubit_time(1, 25),
            GateImpl::Fm.two_qubit_time(24, 25)
        );
        assert!(GateImpl::Am1.two_qubit_time(2, 25) > GateImpl::Am1.two_qubit_time(1, 25));
        assert!(!GateImpl::Fm.is_distance_dependent());
        assert!(GateImpl::Pm.is_distance_dependent());
    }

    #[test]
    fn am_gates_faster_nearby_pm_fm_faster_far_away() {
        // Paper §X-A: AM2 wins at short range, FM/PM at long range.
        let n = 30;
        assert!(GateImpl::Am2.two_qubit_time(1, n) < GateImpl::Pm.two_qubit_time(1, n));
        assert!(GateImpl::Am2.two_qubit_time(1, n) < GateImpl::Fm.two_qubit_time(1, n));
        assert!(GateImpl::Am1.two_qubit_time(25, n) > GateImpl::Pm.two_qubit_time(25, n));
        assert!(GateImpl::Am2.two_qubit_time(25, n) > GateImpl::Fm.two_qubit_time(25, n));
    }

    #[test]
    fn names_round_trip() {
        for g in GateImpl::ALL {
            assert_eq!(g.name().parse::<GateImpl>().unwrap(), g);
        }
        assert!("am3".parse::<GateImpl>().is_err());
        assert_eq!("fm".parse::<GateImpl>().unwrap(), GateImpl::Fm);
    }

    #[test]
    #[should_panic(expected = "separation")]
    fn zero_distance_panics() {
        let _ = GateImpl::Am1.two_qubit_time(0, 5);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn single_ion_chain_panics() {
        let _ = GateImpl::Fm.two_qubit_time(1, 1);
    }
}
