//! Performance and noise models for QCCD trapped-ion systems.
//!
//! Implements §VII of the paper ("Simulation framework: performance and
//! fidelity models") exactly as published:
//!
//! * [`GateImpl`] — the four Mølmer–Sørensen two-qubit gate implementations
//!   and their duration models: AM1 (Wu–Wang–Duan), AM2 (Trout et al.),
//!   PM (Milne et al.), FM (Leung et al.);
//! * [`ShuttleTimes`] — Table I's shuttling-operation durations;
//! * [`HeatingModel`] — the quantized motional-energy bookkeeping
//!   (k₁ quanta per split/merge, k₂ per segment moved);
//! * [`FidelityModel`] — equation (1): `F = 1 − Γτ − A(2n̄+1)` with
//!   `A ∝ N/ln N`;
//! * [`PhysicalModel`] — the aggregate handed to the compiler and
//!   simulator (Fig. 3's "TI performance and noise models" box).
//!
//! Times are `f64` microseconds and energies `f64` motional quanta
//! throughout the workspace.
//!
//! # Example
//!
//! ```
//! use qccd_physics::{GateImpl, PhysicalModel};
//!
//! let model = PhysicalModel::default();
//! // FM gate time depends on chain length, not ion separation:
//! let t1 = GateImpl::Fm.two_qubit_time(1, 20);
//! let t2 = GateImpl::Fm.two_qubit_time(15, 20);
//! assert_eq!(t1, t2);
//! // Fidelity degrades as the chain heats up:
//! let cold = model.fidelity.two_qubit_error(t1, 20, 0.0).total();
//! let hot = model.fidelity.two_qubit_error(t1, 20, 10.0).total();
//! assert!(hot > cold);
//! ```

#![warn(missing_docs)]

pub mod fidelity;
pub mod gate_time;
pub mod heating;
pub mod model;
pub mod shuttle;

pub use fidelity::{ErrorBreakdown, FidelityModel};
pub use gate_time::GateImpl;
pub use heating::HeatingModel;
pub use model::{ModelJsonError, PhysicalModel};
pub use shuttle::ShuttleTimes;
