//! Motional-mode heating model (§VII-B).
//!
//! Each chain is a quantum oscillator whose energy is tracked in units of
//! motional quanta. Chains start in the zero-energy state and gain energy
//! from shuttling operations (no re-cooling is modelled — as in the paper,
//! energy only accumulates):
//!
//! * **Split**: the chain's energy divides proportionally to the sizes of
//!   the two sub-chains (conservation of energy), then each sub-chain
//!   gains `k1(n)` quanta.
//! * **Merge**: the merged chain has the sum of the two energies plus
//!   `k1(n)` quanta (for stopping the chains and preventing collisions).
//! * **Move**: the shuttled ion picks up `k2` quanta per segment, plus
//!   `k_junction` per junction crossed (junction turns accelerate the ion
//!   harder than straight transport; default 2·k2).
//!
//! The paper takes `k1 = 0.1`, `k2 = 0.01` — an order of magnitude better
//! than Honeywell's measured <2 quanta/s, anticipating the improvement
//! needed for 50–100 qubit systems.
//!
//! **Chain-size scaling.** Those constants were demonstrated on few-ion
//! chains. Reconfiguring a long chain requires deforming the confining
//! potential across many more ions, and the paper's own analysis (§IX-A)
//! attributes the reliability collapse beyond ~30 ions per trap partly to
//! "large motional energy hot spots" in long chains. We model this by
//! scaling the split/merge cost for chains longer than
//! [`HeatingModel::chain_ref`] ions:
//!
//! ```text
//! k1(n) = k1 · max(1, n / chain_ref)^chain_exp
//! ```
//!
//! With the defaults (`chain_ref = 10`, `chain_exp = 2`) the published
//! `k1 = 0.1` is reproduced exactly for demonstration-scale chains while
//! long chains heat super-linearly — the hot-spot mechanism of Fig. 6.
//! Setting `chain_exp = 0` recovers the strict constant-`k1` reading of
//! the paper's text (see DESIGN.md §4.3 for the calibration discussion).

use serde::{Deserialize, Serialize};

/// Heating-rate parameters, in motional quanta.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatingModel {
    /// Base quanta gained by each sub-chain on split, and by the merged
    /// chain on merge, for chains up to `chain_ref` ions.
    pub k1: f64,
    /// Quanta gained by a shuttled ion per unit segment.
    pub k2: f64,
    /// Quanta gained by a shuttled ion per junction crossing.
    pub k_junction: f64,
    /// Chain length (ions) up to which `k1` applies unscaled.
    pub chain_ref: f64,
    /// Exponent of the chain-size scaling of `k1` (0 disables scaling).
    pub chain_exp: f64,
}

impl HeatingModel {
    /// The paper's values (k₁ = 0.1, k₂ = 0.01) with the default hot-spot
    /// scaling (`chain_ref = 10`, `chain_exp = 2`).
    pub const PAPER: HeatingModel = HeatingModel {
        k1: 0.1,
        k2: 0.01,
        k_junction: 0.02,
        chain_ref: 10.0,
        chain_exp: 2.0,
    };

    /// The strict constant-k₁ reading of §VII-B (no chain-size scaling).
    pub const CONSTANT_K1: HeatingModel = HeatingModel {
        k1: 0.1,
        k2: 0.01,
        k_junction: 0.02,
        chain_ref: 10.0,
        chain_exp: 0.0,
    };

    /// Split/merge heating for a reconfiguration involving `n` ions.
    pub fn k1_for(&self, n: u32) -> f64 {
        self.k1
            * (f64::from(n) / self.chain_ref)
                .max(1.0)
                .powf(self.chain_exp)
    }

    /// Splits a chain of `n_a + n_b` ions with energy `energy` into
    /// sub-chains of `n_a` and `n_b` ions, returning their energies.
    ///
    /// # Panics
    ///
    /// Panics if either sub-chain is empty.
    pub fn split(&self, energy: f64, n_a: u32, n_b: u32) -> (f64, f64) {
        assert!(n_a > 0 && n_b > 0, "split sub-chains must be non-empty");
        let total = f64::from(n_a + n_b);
        let k1 = self.k1_for(n_a + n_b);
        let e_a = energy * f64::from(n_a) / total + k1;
        let e_b = energy * f64::from(n_b) / total + k1;
        (e_a, e_b)
    }

    /// Merges two chains with energies `e_a` and `e_b` into a chain of
    /// `n_result` ions.
    pub fn merge(&self, e_a: f64, e_b: f64, n_result: u32) -> f64 {
        e_a + e_b + self.k1_for(n_result)
    }

    /// Energy gained by a shuttled ion moving over `segments` unit
    /// segments and `junctions` junction crossings.
    pub fn move_energy(&self, segments: u32, junctions: u32) -> f64 {
        self.k2 * f64::from(segments) + self.k_junction * f64::from(junctions)
    }

    /// Checks physical plausibility (non-negative finite rates, a
    /// positive reference chain length), for the JSON loading path.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("k1", self.k1),
            ("k2", self.k2),
            ("k_junction", self.k_junction),
            ("chain_exp", self.chain_exp),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("heating `{name}` must be finite and >= 0, got {v}"));
            }
        }
        if !self.chain_ref.is_finite() || self.chain_ref <= 0.0 {
            return Err(format!(
                "heating `chain_ref` must be finite and > 0, got {}",
                self.chain_ref
            ));
        }
        Ok(())
    }
}

impl Default for HeatingModel {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let h = HeatingModel::default();
        assert_eq!(h.k1, 0.1);
        assert_eq!(h.k2, 0.01);
    }

    #[test]
    fn k1_is_unscaled_for_demonstration_size_chains() {
        let h = HeatingModel::default();
        for n in 1..=10 {
            assert_eq!(h.k1_for(n), 0.1, "chain of {n}");
        }
        assert!(h.k1_for(20) > h.k1_for(10));
        assert!(h.k1_for(33) > h.k1_for(20));
    }

    #[test]
    fn constant_k1_variant_never_scales() {
        let h = HeatingModel::CONSTANT_K1;
        assert_eq!(h.k1_for(4), 0.1);
        assert_eq!(h.k1_for(33), 0.1);
    }

    #[test]
    fn split_conserves_energy_up_to_k1_additions() {
        let h = HeatingModel::default();
        let (a, b) = h.split(1.0, 3, 7);
        assert!((a - (0.3 + 0.1)).abs() < 1e-12);
        assert!((b - (0.7 + 0.1)).abs() < 1e-12);
        assert!((a + b - (1.0 + 2.0 * h.k1_for(10))).abs() < 1e-12);
    }

    #[test]
    fn split_of_cold_chain_still_heats() {
        let h = HeatingModel::default();
        let (a, b) = h.split(0.0, 1, 9);
        assert_eq!(a, 0.1);
        assert_eq!(b, 0.1);
    }

    #[test]
    fn long_chain_split_heats_more() {
        let h = HeatingModel::default();
        let (small, _) = h.split(0.0, 1, 9);
        let (large, _) = h.split(0.0, 1, 32);
        assert!(large > 2.0 * small, "large {large} vs small {small}");
    }

    #[test]
    fn merge_sums_plus_k1() {
        let h = HeatingModel::default();
        assert!((h.merge(0.4, 0.7, 8) - 1.2).abs() < 1e-12);
        assert!(h.merge(0.4, 0.7, 30) > 1.2);
    }

    #[test]
    fn move_energy_scales_with_path() {
        let h = HeatingModel::default();
        assert!((h.move_energy(4, 0) - 0.04).abs() < 1e-12);
        assert!((h.move_energy(4, 2) - 0.08).abs() < 1e-12);
        assert_eq!(h.move_energy(0, 0), 0.0);
    }

    #[test]
    fn split_then_merge_nets_three_k1_for_small_chains() {
        // The full Fig. 2d sequence on an adjacent-trap shuttle: split off
        // one ion, move it, merge it into another cold 9-ion chain.
        let h = HeatingModel::default();
        let (ion, rest) = h.split(0.0, 1, 9);
        let merged = h.merge(ion + h.move_energy(4, 0), 0.0, 10);
        assert!((merged - (2.0 * h.k1 + 0.04)).abs() < 1e-12);
        assert_eq!(rest, h.k1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_subchain_panics() {
        let _ = HeatingModel::default().split(1.0, 0, 5);
    }

    #[test]
    fn k1_clamps_to_published_value_below_chain_ref() {
        // Below the reference length the scaling factor is max(1, ·)^e
        // = 1, so the published k₁ = 0.1 must be reproduced *exactly*
        // (bit-for-bit), including at the n = chain_ref boundary.
        let h = HeatingModel::PAPER;
        for n in 1..=10u32 {
            assert_eq!(h.k1_for(n).to_bits(), 0.1f64.to_bits(), "chain of {n}");
        }
        // Just above the boundary the scaling engages: (11/10)².
        assert!((h.k1_for(11) - 0.1 * 1.1f64.powi(2)).abs() < 1e-15);
    }

    #[test]
    fn chain_exp_zero_recovers_constant_k1_everywhere() {
        let flat = HeatingModel {
            chain_exp: 0.0,
            ..HeatingModel::PAPER
        };
        for n in [1u32, 5, 10, 11, 33, 100, 10_000] {
            assert_eq!(flat.k1_for(n), HeatingModel::CONSTANT_K1.k1_for(n));
            assert_eq!(flat.k1_for(n), flat.k1, "chain of {n}");
        }
        // And whole split/merge cycles agree between the two spellings.
        assert_eq!(
            flat.split(2.0, 13, 21),
            HeatingModel::CONSTANT_K1.split(2.0, 13, 21)
        );
        assert_eq!(
            flat.merge(0.3, 0.9, 34),
            HeatingModel::CONSTANT_K1.merge(0.3, 0.9, 34)
        );
    }

    #[test]
    fn split_and_merge_conserve_energy_under_json_loaded_models() {
        // The conservation laws must survive the JSON round trip: a
        // split adds exactly 2·k1(n) on top of the proportional division
        // and a merge exactly k1(n) on top of the sum, for the paper
        // model, the constant-k₁ variant, and a custom file.
        let custom: HeatingModel = serde_json::from_str(
            r#"{"k1": 0.25, "k2": 0.02, "k_junction": 0.05,
                "chain_ref": 6, "chain_exp": 1.5}"#,
        )
        .unwrap();
        assert!(custom.validate().is_ok());
        for model in [HeatingModel::PAPER, HeatingModel::CONSTANT_K1, custom] {
            let loaded: HeatingModel =
                serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
            assert_eq!(loaded, model);
            for (energy, n_a, n_b) in [(0.0, 1, 9), (1.7, 3, 7), (4.2, 20, 15)] {
                let (e_a, e_b) = loaded.split(energy, n_a, n_b);
                let expected = energy + 2.0 * loaded.k1_for(n_a + n_b);
                assert!(
                    (e_a + e_b - expected).abs() < 1e-12,
                    "split({energy}, {n_a}, {n_b}) leaked energy"
                );
                let merged = loaded.merge(e_a, e_b, n_a + n_b);
                assert!(
                    (merged - (e_a + e_b + loaded.k1_for(n_a + n_b))).abs() < 1e-12,
                    "merge({n_a}+{n_b}) leaked energy"
                );
            }
        }
    }
}
