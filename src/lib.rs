//! Umbrella crate for the QCCD-Sim workspace.
//!
//! Re-exports every member crate under one roof so the examples and
//! integration tests in this repository can `use qccd_suite::…`. Library
//! consumers should normally depend on the individual crates (`qccd`,
//! `qccd-circuit`, …) directly.

#![warn(missing_docs)]

pub use qccd;
pub use qccd_circuit as circuit;
pub use qccd_compiler as compiler;
pub use qccd_device as device;
pub use qccd_physics as physics;
pub use qccd_sim as sim;
