//! Vendored minimal stand-in for the crates.io `fixedbitset` crate.
//!
//! The container is offline, so — like `serde`, `criterion` and the
//! other `vendor/` crates — this implements just the subset of the real
//! API the workspace uses, with identical signatures and semantics, so
//! swapping `[workspace.dependencies]` to the crates.io version is a
//! drop-in change. The hot loops use it as a *busy-map*: one bit per
//! resource (trap, scheduling slot, DES resource), set while held.
//!
//! Implemented subset: `with_capacity`, `grow`, `len`, `insert`,
//! `remove`, `set`, `put`, `contains`, `clear`, `count_ones(..)`,
//! `is_clear`, `ones()`.

#![warn(missing_docs)]

use std::fmt;

const BITS: usize = usize::BITS as usize;

/// A simple fixed-size bitset backed by a flat `Vec<usize>` of blocks.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct FixedBitSet {
    blocks: Vec<usize>,
    /// Logical length in bits (capacity).
    length: usize,
}

impl FixedBitSet {
    /// Creates an empty bitset able to hold `bits` bits, all zero.
    pub fn with_capacity(bits: usize) -> Self {
        FixedBitSet {
            blocks: vec![0; bits.div_ceil(BITS)],
            length: bits,
        }
    }

    /// Grows the set to `bits` bits if it is smaller, preserving
    /// contents; never shrinks.
    pub fn grow(&mut self, bits: usize) {
        if bits > self.length {
            self.length = bits;
            self.blocks.resize(bits.div_ceil(BITS), 0);
        }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.length
    }

    /// `true` if the capacity is zero bits.
    pub fn is_empty(&self) -> bool {
        self.length == 0
    }

    /// `true` if no bit is set.
    pub fn is_clear(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    #[inline]
    fn index(&self, bit: usize) -> (usize, usize) {
        assert!(bit < self.length, "bit {bit} out of range {}", self.length);
        (bit / BITS, bit % BITS)
    }

    /// Sets `bit` to one.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    #[inline]
    pub fn insert(&mut self, bit: usize) {
        let (block, shift) = self.index(bit);
        self.blocks[block] |= 1 << shift;
    }

    /// Sets `bit` to zero.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    #[inline]
    pub fn remove(&mut self, bit: usize) {
        let (block, shift) = self.index(bit);
        self.blocks[block] &= !(1 << shift);
    }

    /// Sets `bit` to one and returns its previous value.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    #[inline]
    pub fn put(&mut self, bit: usize) -> bool {
        let (block, shift) = self.index(bit);
        let was = self.blocks[block] & (1 << shift) != 0;
        self.blocks[block] |= 1 << shift;
        was
    }

    /// Sets `bit` to `enabled`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    #[inline]
    pub fn set(&mut self, bit: usize, enabled: bool) {
        if enabled {
            self.insert(bit);
        } else {
            self.remove(bit);
        }
    }

    /// `true` if `bit` is set. Out-of-range bits read as zero (matching
    /// the real crate).
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        bit < self.length && self.blocks[bit / BITS] & (1 << (bit % BITS)) != 0
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Number of set bits in `range` (the workspace only uses the full
    /// range, `..`).
    pub fn count_ones(&self, _range: std::ops::RangeFull) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            set: self,
            block: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Smallest set bit at or above `from`, if any. Not part of the
    /// crates.io API (which spells it `ones().next()` after masking) —
    /// the monotone ready-set cursor uses this directly to skip whole
    /// zero blocks.
    pub fn min_one_from(&self, from: usize) -> Option<usize> {
        if from >= self.length {
            return None;
        }
        let mut block = from / BITS;
        // Mask off bits below `from` in the first block.
        let mut bits = self.blocks[block] & (usize::MAX << (from % BITS));
        loop {
            if bits != 0 {
                return Some(block * BITS + bits.trailing_zeros() as usize);
            }
            block += 1;
            if block >= self.blocks.len() {
                return None;
            }
            bits = self.blocks[block];
        }
    }
}

impl fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.ones()).finish()
    }
}

/// Iterator over set bits, ascending. See [`FixedBitSet::ones`].
pub struct Ones<'a> {
    set: &'a FixedBitSet,
    block: usize,
    current: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.current = self.set.blocks[self.block];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.block * BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = FixedBitSet::with_capacity(200);
        assert!(s.is_clear());
        for bit in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!s.contains(bit));
            s.insert(bit);
            assert!(s.contains(bit));
        }
        assert_eq!(s.count_ones(..), 8);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count_ones(..), 7);
        s.clear();
        assert!(s.is_clear());
    }

    #[test]
    fn put_reports_previous_value() {
        let mut s = FixedBitSet::with_capacity(10);
        assert!(!s.put(3));
        assert!(s.put(3));
    }

    #[test]
    fn set_toggles() {
        let mut s = FixedBitSet::with_capacity(10);
        s.set(5, true);
        assert!(s.contains(5));
        s.set(5, false);
        assert!(!s.contains(5));
    }

    #[test]
    fn ones_iterates_ascending_across_blocks() {
        let mut s = FixedBitSet::with_capacity(300);
        let bits = [2, 63, 64, 130, 256, 299];
        for &b in &bits {
            s.insert(b);
        }
        assert_eq!(s.ones().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn min_one_from_scans_forward() {
        let mut s = FixedBitSet::with_capacity(300);
        for b in [5, 70, 200] {
            s.insert(b);
        }
        assert_eq!(s.min_one_from(0), Some(5));
        assert_eq!(s.min_one_from(5), Some(5));
        assert_eq!(s.min_one_from(6), Some(70));
        assert_eq!(s.min_one_from(71), Some(200));
        assert_eq!(s.min_one_from(201), None);
        assert_eq!(s.min_one_from(4000), None);
    }

    #[test]
    fn grow_preserves_contents() {
        let mut s = FixedBitSet::with_capacity(10);
        s.insert(9);
        s.grow(500);
        assert_eq!(s.len(), 500);
        assert!(s.contains(9));
        assert!(!s.contains(499));
        s.insert(499);
        assert!(s.contains(499));
        // Never shrinks.
        s.grow(5);
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = FixedBitSet::with_capacity(8);
        assert!(!s.contains(9999));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        FixedBitSet::with_capacity(8).insert(8);
    }
}
