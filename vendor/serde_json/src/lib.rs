//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Supports what the QCCD workspace uses: [`to_string`],
//! [`to_string_pretty`] and the [`json!`] object-literal macro on the
//! emit side, and [`from_str`] (a full JSON parser with line/column
//! error positions) on the read side, all driven by the vendored
//! `serde::Serialize`/`serde::Deserialize` traits' [`Value`] tree.
//!
//! Floats are emitted as Rust's shortest round-trippable decimal (with
//! the real crate's "always include a decimal point" rule), so
//! `from_str(&to_string(&x))` recovers `x` bit-for-bit for every finite
//! `f64`. Workspace code that needs the same canonical float text for
//! non-JSON output goes through `qccd_sim::canonical_float`, which is
//! defined in terms of [`to_string`] — this stub deliberately adds no
//! public API the real `serde_json` lacks, keeping the vendored →
//! crates.io swap drop-in.

#![warn(missing_docs)]

pub use serde::Value;

/// Error from serialization or deserialization.
///
/// Syntax errors carry the 1-based line and column of the offending
/// character; data errors (well-formed JSON of the wrong shape) carry
/// the underlying [`serde::DeError`] message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq)]
enum ErrorKind {
    Syntax {
        line: usize,
        column: usize,
        message: String,
    },
    Data(String),
}

impl Error {
    fn syntax(line: usize, column: usize, message: impl Into<String>) -> Self {
        Error {
            kind: ErrorKind::Syntax {
                line,
                column,
                message: message.into(),
            },
        }
    }

    fn data(e: serde::DeError) -> Self {
        Error {
            kind: ErrorKind::Data(e.message().to_owned()),
        }
    }

    /// 1-based line of a syntax error (`None` for data errors).
    pub fn line(&self) -> Option<usize> {
        match &self.kind {
            ErrorKind::Syntax { line, .. } => Some(*line),
            ErrorKind::Data(_) => None,
        }
    }

    /// 1-based column of a syntax error (`None` for data errors).
    pub fn column(&self) -> Option<usize> {
        match &self.kind {
            ErrorKind::Syntax { column, .. } => Some(*column),
            ErrorKind::Data(_) => None,
        }
    }

    /// Whether this is a data (shape) error rather than a syntax error.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, ErrorKind::Data(_))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ErrorKind::Syntax {
                line,
                column,
                message,
            } => write!(f, "{message} at line {line} column {column}"),
            ErrorKind::Data(message) => f.write_str(message),
        }
    }
}
impl std::error::Error for Error {}

/// Parses a JSON document into any [`serde::Deserialize`] type.
///
/// Use `from_str::<Value>` to inspect arbitrary JSON.
///
/// # Errors
///
/// Returns a syntax [`Error`] (with line/column) for malformed JSON, or
/// a data [`Error`] when the document is well-formed but does not match
/// `T`'s encoding.
///
/// # Example
///
/// ```
/// let v: serde_json::Value = serde_json::from_str("[1, 2.5, \"x\"]").unwrap();
/// let xs: Vec<f64> = serde_json::from_str("[1, 2.5]").unwrap();
/// assert_eq!(xs, vec![1.0, 2.5]);
/// assert!(matches!(v, serde_json::Value::Array(_)));
/// ```
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::data)
}

/// Maximum nesting depth accepted by the parser (arrays + objects).
const MAX_DEPTH: usize = 128;

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        chars: s.chars().collect(),
        pos: 0,
        line: 1,
        column: 1,
    };
    p.skip_whitespace();
    let value = p.value(0)?;
    p.skip_whitespace();
    if p.pos < p.chars.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> Error {
        Error::syntax(self.line, self.column, message)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect_char(&mut self, expected: char) -> Result<(), Error> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(self.error(format!("expected `{expected}`, found `{c}`"))),
            None => Err(self.error(format!("expected `{expected}`, found end of input"))),
        }
    }

    /// Consumes a keyword (`null`, `true`, `false`) whose first char has
    /// already been seen via peek.
    fn keyword(&mut self, word: &str) -> Result<(), Error> {
        for expected in word.chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                _ => return Err(self.error(format!("invalid literal (expected `{word}`)"))),
            }
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input, expected a value")),
            Some('n') => self.keyword("null").map(|()| Value::Null),
            Some('t') => self.keyword("true").map(|()| Value::Bool(true)),
            Some('f') => self.keyword("false").map(|()| Value::Bool(false)),
            Some('"') => self.string().map(Value::Str),
            Some('[') => self.array(depth),
            Some('{') => self.object(depth),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{c}`"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Value::Array(items)),
                Some(c) => return Err(self.error(format!("expected `,` or `]`, found `{c}`"))),
                None => return Err(self.error("unexpected end of input inside array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect_char('{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some('"') {
                return Err(self.error("expected a string object key"));
            }
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_char(':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Value::Object(entries)),
                Some(c) => return Err(self.error(format!("expected `,` or `}}`, found `{c}`"))),
                None => return Err(self.error("unexpected end of input inside object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let first = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require a paired \uXXXX low
                            // surrogate.
                            if self.bump() != Some('\\') || self.bump() != Some('u') {
                                return Err(self.error("unpaired surrogate in \\u escape"));
                            }
                            let second = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(self.error("invalid low surrogate in \\u escape"));
                            }
                            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(code).ok_or_else(|| self.error("invalid \\u escape"))?
                        } else {
                            char::from_u32(first)
                                .ok_or_else(|| self.error("unpaired surrogate in \\u escape"))?
                        };
                        out.push(c);
                    }
                    Some(c) => return Err(self.error(format!("invalid escape `\\{c}`"))),
                    None => return Err(self.error("unterminated string")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(self.error("control character in string"))
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| self.error(format!("invalid hex digit `{c}` in \\u escape")))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let mut text = String::new();
        let negative = self.peek() == Some('-');
        if negative {
            text.push(self.bump().expect("peeked"));
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some('0') => text.push(self.bump().expect("peeked")),
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    text.push(self.bump().expect("peeked"));
                }
            }
            _ => return Err(self.error("expected a digit in number")),
        }
        let mut integral = true;
        if self.peek() == Some('.') {
            integral = false;
            text.push(self.bump().expect("peeked"));
            if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                return Err(self.error("expected a digit after decimal point"));
            }
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                text.push(self.bump().expect("peeked"));
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            integral = false;
            text.push(self.bump().expect("peeked"));
            if matches!(self.peek(), Some('+' | '-')) {
                text.push(self.bump().expect("peeked"));
            }
            if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                return Err(self.error("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                text.push(self.bump().expect("peeked"));
            }
        }
        if integral {
            // Mirror serde_json: integers keep their integer identity,
            // overflowing literals degrade to floats.
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

/// Renders any serializable value into its [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Builds a [`Value`] from a JSON-ish object literal, e.g.
/// `json!({"fig6": fig6, "fig7": fig7})`. Values may be any
/// `serde::Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            '{',
            '}',
            indent,
            depth,
            |out, (k, val), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent, depth + 1);
        write_item(out, item, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push(close);
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

/// The canonical text form of an `f64`: shortest decimal that parses
/// back to the same bits, with serde_json's "always include a decimal
/// point" rule for round numbers, so `from_str(&canonical_float(x)) ==
/// x`. Non-finite floats render as `null` (serde_json's default).
/// Private: the public spelling is `to_string(&x)`, which the real
/// crate also supports.
fn canonical_float(f: f64) -> String {
    if f.is_finite() {
        let mut s = f.to_string();
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_owned()
    }
}

fn write_float(out: &mut String, f: f64) {
    out.push_str(&canonical_float(f));
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_objects() {
        let v = json!({"name": "l6", "caps": vec![14u32, 20, 26], "ok": true});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"l6\""));
        assert!(text.contains("\"caps\": [\n"));
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    // Regression coverage for the vendored derive macro, exercised
    // here because this crate sits just above `serde` in the graph.
    #[test]
    fn derive_handles_trailing_commas_and_all_item_shapes() {
        #[derive(serde::Serialize)]
        struct TrailingTuple(
            u32,
            u64, // rustfmt adds trailing commas to wrapped lists
        );
        #[derive(serde::Serialize)]
        struct Newtype(u32);
        #[derive(serde::Serialize)]
        struct Named {
            a: u32,
            b: Vec<(String, f64)>,
        }
        #[derive(serde::Serialize)]
        enum Mixed {
            Unit,
            Tup(u8, u8),
            Fields { x: i32 },
        }

        assert_eq!(to_string(&TrailingTuple(1, 2)).unwrap(), "[1,2]");
        assert_eq!(to_string(&Newtype(7)).unwrap(), "7");
        assert_eq!(
            to_string(&Named {
                a: 1,
                b: vec![("k".into(), 0.5)],
            })
            .unwrap(),
            r#"{"a":1,"b":[["k",0.5]]}"#
        );
        assert_eq!(to_string(&Mixed::Unit).unwrap(), r#""Unit""#);
        assert_eq!(to_string(&Mixed::Tup(1, 2)).unwrap(), r#"{"Tup":[1,2]}"#);
        assert_eq!(
            to_string(&Mixed::Fields { x: -3 }).unwrap(),
            r#"{"Fields":{"x":-3}}"#
        );
    }

    // -----------------------------------------------------------------
    // Parser
    // -----------------------------------------------------------------

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert!(from_str::<bool>("true").unwrap());
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(from_str::<Value>("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str::<Value>("2.5e3").unwrap(), Value::Float(2500.0));
        assert_eq!(from_str::<u32>(" 17 ").unwrap(), 17);
        assert_eq!(from_str::<f64>("-0.125").unwrap(), -0.125);
        assert_eq!(from_str::<String>(r#""hi""#).unwrap(), "hi");
    }

    #[test]
    fn parses_containers() {
        let v: Vec<Vec<u32>> = from_str("[[1,2],[3],[]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3], vec![]]);
        let v: Value = from_str(r#"{"a": [true, null], "b": {}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![Value::Bool(true), Value::Null]))
        );
        assert_eq!(v.get("b"), Some(&Value::Object(vec![])));
        let opt: Vec<Option<f64>> = from_str("[1.5, null]").unwrap();
        assert_eq!(opt, vec![Some(1.5), None]);
    }

    #[test]
    fn parses_string_escapes() {
        let s: String = from_str(r#""a\"b\\c\/d\n\tAé""#).unwrap();
        assert_eq!(s, "a\"b\\c/d\n\tAé");
        // Surrogate pair: U+1D11E (musical G clef).
        let s: String = from_str(r#""𝄞""#).unwrap();
        assert_eq!(s, "\u{1D11E}");
        assert!(from_str::<String>(r#""\ud834""#).is_err());
        assert!(from_str::<String>(r#""\q""#).is_err());
    }

    #[test]
    fn syntax_errors_carry_line_and_column() {
        let err = from_str::<Value>("{\n  \"a\": 1,\n  oops\n}").unwrap_err();
        assert_eq!(err.line(), Some(3));
        assert!(err.column().unwrap() >= 3, "column {:?}", err.column());
        assert!(err.to_string().contains("line 3"));

        let err = from_str::<Value>("[1, 2").unwrap_err();
        assert_eq!(err.line(), Some(1));
        assert!(!err.is_data());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            "1e",
            "+1",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "\"unterminated",
            "[1] extra",
            "nullx",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn data_errors_name_the_problem() {
        let err = from_str::<Vec<u32>>("[1, -2]").unwrap_err();
        assert!(err.is_data());
        assert!(err.line().is_none());
        assert!(err.to_string().contains("out of range"));
        assert!(from_str::<bool>("7").unwrap_err().is_data());
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(from_str::<Value>(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn integer_identity_is_preserved() {
        assert_eq!(
            from_str::<Value>("9007199254740993").unwrap(),
            Value::UInt(9007199254740993)
        );
        assert_eq!(
            from_str::<Value>("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        // Beyond u64: degrades to float like the real crate's default.
        assert!(matches!(
            from_str::<Value>("18446744073709551616").unwrap(),
            Value::Float(_)
        ));
        assert_eq!(
            from_str::<Value>("-9223372036854775808").unwrap(),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn derived_types_round_trip() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Named {
            a: u32,
            b: Vec<(String, f64)>,
            c: Option<i64>,
        }
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Newtype(f64);
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Pair(u8, String);
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        enum Mixed {
            Unit,
            New(u32),
            Tup(u8, u8),
            Fields { x: i32, y: Newtype },
        }

        let named = Named {
            a: 7,
            b: vec![("k".into(), 0.5)],
            c: None,
        };
        assert_eq!(
            from_str::<Named>(&to_string(&named).unwrap()).unwrap(),
            named
        );
        assert_eq!(
            from_str::<Pair>(&to_string(&Pair(3, "z".into())).unwrap()).unwrap(),
            Pair(3, "z".into())
        );
        for m in [
            Mixed::Unit,
            Mixed::New(9),
            Mixed::Tup(1, 2),
            Mixed::Fields {
                x: -4,
                y: Newtype(2.25),
            },
        ] {
            assert_eq!(from_str::<Mixed>(&to_string(&m).unwrap()).unwrap(), m);
        }
        // Shape mismatches are data errors, not panics.
        assert!(from_str::<Named>(r#"{"a": 1}"#).unwrap_err().is_data());
        assert!(from_str::<Mixed>(r#""Nope""#).unwrap_err().is_data());
        assert!(from_str::<Mixed>(r#"{"Unit": 1}"#).unwrap_err().is_data());
        assert!(from_str::<Mixed>(r#""Tup""#).unwrap_err().is_data());
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let v = json!({"name": "l6", "caps": vec![14u32, 20, 26], "nested": json!({"x": 1.5})});
        let compact: Value = from_str(&to_string(&v).unwrap()).unwrap();
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(compact, v);
        assert_eq!(pretty, v);
    }

    #[test]
    fn canonical_floats_round_trip_exactly() {
        // Deterministic pseudo-random bit patterns (splitmix64) plus
        // hand-picked edge cases: parsing the canonical text must
        // recover the exact bits.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut cases: Vec<f64> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            2.0 / 3.0,
            1e-300,
            -1e300,
            f64::MIN_POSITIVE,
            f64::MAX,
            std::f64::consts::PI,
            0.30504420999999804, // a real artifact value
        ];
        for _ in 0..512 {
            let f = f64::from_bits(next());
            if f.is_finite() {
                cases.push(f);
            }
        }
        for x in cases {
            let text = canonical_float(x);
            let back: f64 = from_str(&text).expect(&text);
            assert_eq!(back.to_bits(), x.to_bits(), "drift for {x:?} via {text}");
            // And through the full serializer too.
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }
}
