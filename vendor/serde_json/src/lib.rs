//! Minimal, dependency-free stand-in for `serde_json` (emit only).
//!
//! Supports exactly what the QCCD workspace uses: [`to_string`],
//! [`to_string_pretty`] and the [`json!`] object-literal macro, all
//! driven by the vendored `serde::Serialize` trait's [`Value`] tree.
//! There is no parser — nothing in the workspace reads JSON back.

#![warn(missing_docs)]

pub use serde::Value;

/// Error type for serialization.
///
/// The stub's emitter is infallible, so this is never constructed; it
/// exists to keep `Result`-shaped signatures compatible with the real
/// crate.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub error")
    }
}
impl std::error::Error for Error {}

/// Renders any serializable value into its [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Builds a [`Value`] from a JSON-ish object literal, e.g.
/// `json!({"fig6": fig6, "fig7": fig7})`. Values may be any
/// `serde::Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            '{',
            '}',
            indent,
            depth,
            |out, (k, val), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent, depth + 1);
        write_item(out, item, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push(close);
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // JSON has no integer/float distinction, but mirror serde_json's
        // "always include a decimal point" behavior for round numbers.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Like serde_json's default, non-finite floats become null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_objects() {
        let v = json!({"name": "l6", "caps": vec![14u32, 20, 26], "ok": true});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"l6\""));
        assert!(text.contains("\"caps\": [\n"));
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    // Regression coverage for the vendored derive macro, exercised
    // here because this crate sits just above `serde` in the graph.
    #[test]
    fn derive_handles_trailing_commas_and_all_item_shapes() {
        #[derive(serde::Serialize)]
        struct TrailingTuple(
            u32,
            u64, // rustfmt adds trailing commas to wrapped lists
        );
        #[derive(serde::Serialize)]
        struct Newtype(u32);
        #[derive(serde::Serialize)]
        struct Named {
            a: u32,
            b: Vec<(String, f64)>,
        }
        #[derive(serde::Serialize)]
        enum Mixed {
            Unit,
            Tup(u8, u8),
            Fields { x: i32 },
        }

        assert_eq!(to_string(&TrailingTuple(1, 2)).unwrap(), "[1,2]");
        assert_eq!(to_string(&Newtype(7)).unwrap(), "7");
        assert_eq!(
            to_string(&Named {
                a: 1,
                b: vec![("k".into(), 0.5)],
            })
            .unwrap(),
            r#"{"a":1,"b":[["k",0.5]]}"#
        );
        assert_eq!(to_string(&Mixed::Unit).unwrap(), r#""Unit""#);
        assert_eq!(to_string(&Mixed::Tup(1, 2)).unwrap(), r#"{"Tup":[1,2]}"#);
        assert_eq!(
            to_string(&Mixed::Fields { x: -3 }).unwrap(),
            r#"{"Fields":{"x":-3}}"#
        );
    }
}
