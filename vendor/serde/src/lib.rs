//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The workspace builds in an offline container with no crates.io
//! access, so this vendored facade supplies just the surface the QCCD
//! crates use: the `Serialize`/`Deserialize` names (trait + derive
//! macro, like the real crate's `derive` feature) and enough machinery
//! for the vendored `serde_json` to render derived types.
//!
//! Instead of the real crate's visitor-based data model, [`Serialize`]
//! renders directly into a [`Value`] tree which `serde_json`
//! pretty-prints. [`Deserialize`] is a marker trait only — nothing in
//! the workspace deserializes at run time.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A serialized value tree — the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map, preserving insertion order.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`] tree.
///
/// Implemented for the std primitives/containers the workspace
/// serializes, and derivable via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker trait backing `#[derive(Deserialize)]`.
///
/// The workspace never deserializes at run time, so this carries no
/// methods; the derive exists so seed code compiles unchanged.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
