//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The workspace builds in an offline container with no crates.io
//! access, so this vendored facade supplies just the surface the QCCD
//! crates use: the `Serialize`/`Deserialize` names (trait + derive
//! macro, like the real crate's `derive` feature) and enough machinery
//! for the vendored `serde_json` to render derived types.
//!
//! Instead of the real crate's visitor-based data model, [`Serialize`]
//! renders directly into a [`Value`] tree which `serde_json`
//! pretty-prints, and [`Deserialize`] reconstructs values from the same
//! [`Value`] tree (which `serde_json` parses from text). The derive
//! macros generate mirrored encodings, so any derived type round-trips:
//! `from_value(to_value(x)) == x`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A serialized value tree — the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map, preserving insertion order.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`] tree.
///
/// Implemented for the std primitives/containers the workspace
/// serializes, and derivable via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Error produced while reconstructing a value from a [`Value`] tree:
/// type mismatches, missing struct fields, unknown enum variants and
/// out-of-range numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Expected a value of shape `expected`, found `value`.
    pub fn type_mismatch(expected: &str, value: &Value) -> Self {
        DeError::custom(format!("expected {expected}, found {}", value.kind()))
    }

    /// A required struct field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError::custom(format!("missing field `{field}` of `{ty}`"))
    }

    /// An enum payload named no known variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError::custom(format!("unknown variant `{variant}` of enum `{ty}`"))
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types reconstructible from a [`Value`] tree.
///
/// The inverse of [`Serialize`]: implemented for the std
/// primitives/containers the workspace uses and derivable via
/// `#[derive(Deserialize)]`, whose generated code mirrors the
/// `#[derive(Serialize)]` encoding exactly.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] if `value` does not have the shape this
    /// type serializes to.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Value {
    /// Short name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) => "an integer",
            Value::UInt(_) => "an unsigned integer",
            Value::Float(_) => "a floating-point number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls, mirroring the Serialize impls above.
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("a boolean", other)),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        DeError::custom(format!(
                            "integer {u} out of range for {}",
                            stringify!($t)
                        ))
                    })?,
                    other => return Err(DeError::type_mismatch("an integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i).map_err(|_| {
                        DeError::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    })?,
                    other => return Err(DeError::type_mismatch("an unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);
de_uint!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            // JSON has one number type; accept integral literals too.
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::type_mismatch("a number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(DeError::custom(format!(
                        "expected a single-character string, found {s:?}"
                    ))),
                }
            }
            other => Err(DeError::type_mismatch("a string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("a string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("an array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected an array of {N} elements, found {len}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::type_mismatch(
                        concat!("an array of ", $len, " elements"),
                        other,
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (1, 0 A)
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("an object", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("an object", other)),
        }
    }
}

/// Support routines for `#[derive(Deserialize)]`-generated code.
///
/// Not part of the public API contract of the real `serde`; the derive
/// macro is the only intended caller.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Unwraps an object value into its entry list.
    pub fn object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
        match value {
            Value::Object(entries) => Ok(entries),
            other => Err(DeError::custom(format!(
                "expected `{ty}` as an object, found {}",
                other.kind()
            ))),
        }
    }

    /// Extracts and deserializes a required struct field.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, DeError> {
        let value = entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::missing_field(ty, name))?;
        T::from_value(value).map_err(|e| DeError::custom(format!("field `{name}` of `{ty}`: {e}")))
    }

    /// Unwraps an array value of exactly `len` elements.
    pub fn array<'v>(value: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], DeError> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(DeError::custom(format!(
                "expected `{ty}` as an array of {len} elements, found {}",
                items.len()
            ))),
            other => Err(DeError::custom(format!(
                "expected `{ty}` as an array, found {}",
                other.kind()
            ))),
        }
    }

    /// Splits an enum encoding into `(variant_name, payload)`.
    ///
    /// Unit variants serialize as a bare string (payload `None`); data
    /// variants as a single-entry object `{variant: payload}`.
    pub fn variant<'v>(
        value: &'v Value,
        ty: &str,
    ) -> Result<(&'v str, Option<&'v Value>), DeError> {
        match value {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(DeError::custom(format!(
                "expected enum `{ty}` as a string or single-entry object, found {}",
                other.kind()
            ))),
        }
    }
}
