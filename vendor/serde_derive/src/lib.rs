//! Minimal, dependency-free stand-ins for serde's derive macros.
//!
//! This workspace builds in an offline container, so the real
//! `serde_derive` (and its `syn`/`quote` dependency tree) is not
//! available. These macros cover exactly the shapes the workspace
//! derives on: non-generic structs (unit, tuple, named) and enums
//! (unit, tuple and struct variants, no discriminants with data).
//!
//! `#[derive(Serialize)]` emits an implementation of the vendored
//! `serde::Serialize` trait (which renders to `serde::Value`);
//! `#[derive(Deserialize)]` emits the mirrored `serde::Deserialize`
//! implementation reconstructing the type from the same `serde::Value`
//! encoding, so every derived type round-trips.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::TupleStruct(n) => tuple_struct_body(*n),
        Shape::NamedStruct(fields) => object_expr(fields, "self.", "&"),
        Shape::Enum(variants) => enum_body(&item.name, variants),
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}",
        name = item.name,
        body = body
    )
    .parse()
    .expect("serde_derive: generated impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!(
            "match value {{\n\
                 serde::Value::Null => Ok({name}),\n\
                 other => Err(serde::DeError::type_mismatch(\"null\", other)),\n\
             }}"
        ),
        Shape::TupleStruct(n) => de_tuple_body(name, name, *n, "value"),
        Shape::NamedStruct(fields) => de_named_body(name, name, fields, "value"),
        Shape::Enum(variants) => de_enum_body(name, variants),
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated impl parses")
}

/// Deserialization expression for a tuple shape: `ctor` is the
/// constructor path, `label` the error-message name, `src` the
/// expression holding `&serde::Value`.
fn de_tuple_body(label: &str, ctor: &str, n: usize, src: &str) -> String {
    if n == 1 {
        // Newtypes serialize transparently.
        format!("Ok({ctor}(serde::Deserialize::from_value({src})?))")
    } else {
        let items: Vec<String> = (0..n)
            .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
            .collect();
        format!(
            "{{ let items = serde::de::array({src}, {n}, \"{label}\")?;\n\
                Ok({ctor}({items})) }}",
            items = items.join(", ")
        )
    }
}

/// Deserialization expression for a named-field shape.
fn de_named_body(label: &str, ctor: &str, fields: &[String], src: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: serde::de::field(entries, \"{f}\", \"{label}\")?"))
        .collect();
    format!(
        "{{ let entries = serde::de::object({src}, \"{label}\")?;\n\
            Ok({ctor} {{ {items} }}) }}",
        items = items.join(", ")
    )
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let label = format!("{name}::{vname}");
        let arm = match &v.shape {
            VariantShape::Unit => format!(
                "(\"{vname}\", None) => Ok({name}::{vname}),\n\
                 (\"{vname}\", Some(_)) => Err(serde::DeError::custom(\n\
                     \"variant `{vname}` of `{name}` carries no data\")),\n"
            ),
            VariantShape::Tuple(n) => format!(
                "(\"{vname}\", Some(payload)) => {body},\n\
                 (\"{vname}\", None) => Err(serde::DeError::custom(\n\
                     \"variant `{vname}` of `{name}` expects data\")),\n",
                body = de_tuple_body(&label, &format!("{name}::{vname}"), *n, "payload")
            ),
            VariantShape::Named(fields) => format!(
                "(\"{vname}\", Some(payload)) => {body},\n\
                 (\"{vname}\", None) => Err(serde::DeError::custom(\n\
                     \"variant `{vname}` of `{name}` expects data\")),\n",
                body = de_named_body(&label, &format!("{name}::{vname}"), fields, "payload")
            ),
        };
        arms.push_str(&arm);
    }
    format!(
        "{{ let (variant, payload) = serde::de::variant(value, \"{name}\")?;\n\
            match (variant, payload) {{\n\
                {arms}\
                (other, _) => Err(serde::DeError::unknown_variant(\"{name}\", other)),\n\
            }} }}"
    )
}

fn tuple_struct_body(n: usize) -> String {
    if n == 1 {
        // Newtypes (ids, `Qubit(u32)`, …) serialize transparently.
        "serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..n)
            .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
            .collect();
        format!("serde::Value::Array(vec![{}])", items.join(", "))
    }
}

fn object_expr(fields: &[String], prefix: &str, borrow: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value({borrow}{prefix}{f}))",))
        .collect();
    format!("serde::Value::Object(vec![{}])", items.join(", "))
}

fn enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let arm = match &v.shape {
            VariantShape::Unit => format!(
                "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),",
                v = v.name
            ),
            VariantShape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let inner = if *n == 1 {
                    "serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{v}({binders}) => serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),",
                    v = v.name,
                    binders = binders.join(", ")
                )
            }
            VariantShape::Named(fields) => {
                let inner = object_expr(fields, "", "");
                format!(
                    "{name}::{v} {{ {fields} }} => serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),",
                    v = v.name,
                    fields = fields.join(", ")
                )
            }
        };
        arms.push_str(&arm);
        arms.push('\n');
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// A tiny hand-rolled parser over `proc_macro::TokenStream` — enough for the
// item shapes this workspace derives on. Fails loudly on anything fancier
// (generics, discriminants with payloads) rather than miscompiling.
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic item `{name}` is not supported by the vendored stub");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_field_names(g.stream()))
            }
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => break,
        }
    }
}

/// Counts comma-separated fields at angle-bracket depth 0, ignoring a
/// trailing comma (rustfmt adds one to multi-line field lists).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut pending = false; // tokens seen since the last top-level comma
    let mut prev_dash = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' && !prev_dash {
                    depth -= 1;
                } else if c == ',' && depth == 0 {
                    fields += 1;
                    pending = false;
                    prev_dash = false;
                    continue;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        pending = true;
    }
    if pending {
        fields + 1
    } else {
        fields
    }
}

/// Extracts the field names of a named-field body (struct or enum variant).
fn named_field_names(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("serde_derive: expected field name, got {:?}", tokens.get(i));
        };
        names.push(id.to_string());
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut depth = 0i32;
        let mut prev_dash = false;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' && !prev_dash {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        i += 1;
                        break;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            i += 1;
        }
    }
    names
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!(
                "serde_derive: expected variant name, got {:?}",
                tokens.get(i)
            );
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(named_field_names(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
