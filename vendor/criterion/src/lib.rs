//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The workspace builds offline, so this vendored crate supplies the
//! API its bench targets use — [`Criterion`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a
//! robust-statistics measurement loop instead of the real crate's full
//! machinery. Each benchmark warms up once, then runs up to
//! `sample_size` timed iterations bounded by a ~300 ms budget, and
//! reports the **median** time per iteration plus an
//! interquartile-trimmed mean (samples outside `[q1 − 1.5·IQR,
//! q3 + 1.5·IQR]` are dropped as outliers and counted), so scheduler
//! hiccups and allocator warm-up spikes do not skew the reported
//! number the way a plain mean does.
//!
//! When a bench binary is invoked with `--test` (CI does this via
//! `cargo bench -p qccd-bench -- --test`; plain `cargo test` never
//! executes `harness = false` bench targets), every benchmark runs
//! exactly one iteration, so benches double as cheap smoke tests.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Per-benchmark time budget in normal (non `--test`) mode.
const BUDGET: Duration = Duration::from_millis(300);

/// Entry point handed to benchmark functions; collects and runs them.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Registers and immediately runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.test_mode, self.default_sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.criterion.test_mode, self.sample_size, &mut f);
        self
    }

    /// Registers and runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&name, self.criterion.test_mode, self.sample_size, &mut g);
        self
    }

    /// Ends the group (kept for API compatibility; a no-op here).
    pub fn finish(self) {}
}

/// A function + parameter label identifying one benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Anything acceptable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Renders the identifier label.
    fn into_id(self) -> String;
}
impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}
impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    elapsed: Duration,
    max_iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call, until the sample
    /// count or time budget is reached (always at least once).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let start = Instant::now();
            let out = routine();
            let sample = start.elapsed();
            self.elapsed += sample;
            self.samples.push(sample);
            drop(black_box(out));
            if self.samples.len() as u64 >= self.max_iters || self.elapsed >= self.budget {
                break;
            }
        }
    }
}

/// Robust summary of one benchmark's per-iteration samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Median time per iteration.
    pub median: Duration,
    /// Mean over the samples inside the Tukey fences
    /// `[q1 − 1.5·IQR, q3 + 1.5·IQR]`.
    pub trimmed_mean: Duration,
    /// Samples outside the fences (excluded from `trimmed_mean`).
    pub outliers: usize,
    /// Total timed iterations.
    pub iters: usize,
}

/// Computes median + interquartile-trimmed statistics over raw samples.
/// Returns `None` for an empty sample set.
pub fn stats(samples: &[Duration]) -> Option<Stats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    // Nearest-rank percentile on the sorted samples.
    let percentile = |p: f64| -> Duration {
        let idx = ((n as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    };
    let q1 = percentile(0.25);
    let q3 = percentile(0.75);
    let iqr = q3.saturating_sub(q1);
    let low = q1.saturating_sub(iqr * 3 / 2);
    let high = q3 + iqr * 3 / 2;
    let kept: Vec<Duration> = sorted
        .iter()
        .copied()
        .filter(|&s| s >= low && s <= high)
        .collect();
    let trimmed_mean = kept.iter().sum::<Duration>() / kept.len().max(1) as u32;
    Some(Stats {
        median,
        trimmed_mean,
        outliers: n - kept.len(),
        iters: n,
    })
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        elapsed: Duration::ZERO,
        max_iters: if test_mode {
            1
        } else {
            sample_size.max(1) as u64
        },
        budget: if test_mode { Duration::ZERO } else { BUDGET },
    };
    f(&mut b);
    match stats(&b.samples) {
        None => println!("{name:<40} (no iterations)"),
        Some(s) => println!(
            "{name:<40} median {:>10.2?}/iter  (trimmed mean {:.2?}, {} iters, {} outliers)",
            s.median, s.trimmed_mean, s.iters, s.outliers
        ),
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmark
/// bodies; re-exported name-compatible with the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, name-compatible with criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, name-compatible with criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_at_least_once_and_respects_sample_size() {
        let mut b = Bencher {
            samples: Vec::new(),
            elapsed: Duration::ZERO,
            max_iters: 5,
            budget: Duration::from_secs(60),
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 100,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("b", 3), &3, |b, &x| {
                b.iter(|| black_box(x));
            });
            g.finish();
        }
        assert_eq!(ran, 1, "test mode runs exactly one iteration");
    }

    #[test]
    fn stats_median_odd_and_even() {
        let ms = Duration::from_millis;
        let s = stats(&[ms(3), ms(1), ms(2)]).unwrap();
        assert_eq!(s.median, ms(2));
        let s = stats(&[ms(1), ms(2), ms(3), ms(4)]).unwrap();
        assert_eq!(s.median, ms(2) + Duration::from_micros(500));
    }

    #[test]
    fn stats_trims_outliers_from_the_mean() {
        let ms = Duration::from_millis;
        // 9 well-behaved samples around 10 ms plus one 500 ms spike: the
        // spike sits far outside the Tukey fences, so the median and the
        // trimmed mean both stay near 10 ms while a plain mean would be
        // dragged to ~59 ms.
        let mut samples = vec![ms(10); 9];
        samples.push(ms(500));
        let s = stats(&samples).unwrap();
        assert_eq!(s.iters, 10);
        assert_eq!(s.outliers, 1);
        assert_eq!(s.median, ms(10));
        assert_eq!(s.trimmed_mean, ms(10));
        let plain_mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
        assert!(plain_mean >= ms(50), "the spike skews a plain mean");
    }

    #[test]
    fn stats_keeps_everything_when_spread_is_tame() {
        let us = Duration::from_micros;
        let samples: Vec<Duration> = (0..20).map(|i| us(100 + i)).collect();
        let s = stats(&samples).unwrap();
        assert_eq!(s.outliers, 0);
        assert_eq!(s.iters, 20);
        assert!(s.trimmed_mean >= us(100) && s.trimmed_mean <= us(120));
    }

    #[test]
    fn stats_handles_degenerate_inputs() {
        assert_eq!(stats(&[]), None);
        let one = stats(&[Duration::from_millis(7)]).unwrap();
        assert_eq!(one.median, Duration::from_millis(7));
        assert_eq!(one.trimmed_mean, Duration::from_millis(7));
        assert_eq!(one.outliers, 0);
        // All-identical samples: IQR is zero, nothing is trimmed.
        let same = stats(&[Duration::from_millis(4); 8]).unwrap();
        assert_eq!(same.outliers, 0);
        assert_eq!(same.trimmed_mean, Duration::from_millis(4));
    }
}
