//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The workspace builds offline, so this vendored crate supplies the
//! API its three bench targets use — [`Criterion`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a
//! simple wall-clock measurement loop instead of the real crate's
//! statistical machinery. Each benchmark warms up once, then runs up
//! to `sample_size` timed iterations bounded by a ~300 ms budget, and
//! prints mean time per iteration.
//!
//! When a bench binary is invoked with `--test` (CI does this via
//! `cargo bench -p qccd-bench -- --test`; plain `cargo test` never
//! executes `harness = false` bench targets), every benchmark runs
//! exactly one iteration, so benches double as cheap smoke tests.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Per-benchmark time budget in normal (non `--test`) mode.
const BUDGET: Duration = Duration::from_millis(300);

/// Entry point handed to benchmark functions; collects and runs them.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Registers and immediately runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.test_mode, self.default_sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.criterion.test_mode, self.sample_size, &mut f);
        self
    }

    /// Registers and runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&name, self.criterion.test_mode, self.sample_size, &mut g);
        self
    }

    /// Ends the group (kept for API compatibility; a no-op here).
    pub fn finish(self) {}
}

/// A function + parameter label identifying one benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Anything acceptable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Renders the identifier label.
    fn into_id(self) -> String;
}
impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}
impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    max_iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call, until the sample
    /// count or time budget is reached (always at least once).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            drop(black_box(out));
            self.iters_done += 1;
            if self.iters_done >= self.max_iters || self.elapsed >= self.budget {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        max_iters: if test_mode {
            1
        } else {
            sample_size.max(1) as u64
        },
        budget: if test_mode { Duration::ZERO } else { BUDGET },
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let per_iter = b.elapsed / b.iters_done as u32;
    println!(
        "{name:<40} {per_iter:>12.2?}/iter  ({} iters)",
        b.iters_done
    );
}

/// Opaque value sink preventing the optimizer from deleting benchmark
/// bodies; re-exported name-compatible with the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, name-compatible with criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, name-compatible with criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_at_least_once_and_respects_sample_size() {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            max_iters: 5,
            budget: Duration::from_secs(60),
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(b.iters_done, 5);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 100,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("b", 3), &3, |b, &x| {
                b.iter(|| black_box(x));
            });
            g.finish();
        }
        assert_eq!(ran, 1, "test mode runs exactly one iteration");
    }
}
