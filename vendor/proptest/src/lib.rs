//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds offline, so this vendored harness supplies the
//! slice of proptest the integration tests use: the [`proptest!`]
//! macro over `name in strategy` arguments, range and boolean
//! strategies, [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros.
//!
//! Unlike the real crate there is no shrinking and no failure
//! persistence: cases are drawn from a fixed-seed ChaCha8 stream (so
//! every run tests the same inputs), and a failing property panics
//! with the case number and sampled arguments in the message.

#![warn(missing_docs)]

use std::ops::Range;

pub use rand_chacha::ChaCha8Rng;

/// Per-property configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type, samplable per test case.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample_value<R: rand::RngCore>(&self, rng: &mut R) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value<R: rand::RngCore>(&self, rng: &mut R) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn sample_value<R: rand::RngCore>(&self, rng: &mut R) -> bool {
            use rand::Rng as _;
            rng.gen()
        }
    }
}

/// Builds the deterministic RNG for one (property, case) pair.
pub fn rng_for_case(property: &str, case: u32) -> ChaCha8Rng {
    use rand::SeedableRng as _;
    // FNV-1a over the property name keeps streams distinct per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32))
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::rng_for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::sample_value(&($strat), &mut rng);
                    )*
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        let message = panic
                            .downcast_ref::<String>()
                            .map(|s| s.as_str())
                            .or_else(|| panic.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "property {} failed at case {}/{} with arguments {}\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            format!(concat!("{{ " $(, stringify!($arg), ": {:?}, ")* , "}}") $(, $arg)*),
                            message,
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The names most property tests want in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            n in 2u32..24,
            x in 0.0f64..0.8,
            flag in crate::bool::ANY,
        ) {
            prop_assert!((2..24).contains(&n));
            prop_assert!((0.0..0.8).contains(&x));
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn default_config_form_compiles(k in 0usize..5) {
            prop_assert!(k < 5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::RngCore as _;
        let a = crate::rng_for_case("p", 3).next_u32();
        let b = crate::rng_for_case("p", 3).next_u32();
        let c = crate::rng_for_case("p", 4).next_u32();
        let d = crate::rng_for_case("q", 3).next_u32();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_arguments() {
        proptest! {
            fn always_fails(n in 0u32..10) {
                prop_assert!(n > 100, "n too small");
            }
        }
        always_fails();
    }
}
