//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API).
//!
//! Provides the slice of the API the QCCD workspace uses — the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] traits with `gen`, `gen_range`
//! and `gen_bool` — backed by whatever generator implements
//! [`RngCore`] (the workspace always uses the vendored
//! `rand_chacha::ChaCha8Rng`).
//!
//! Distributions are uniform. Integer sampling uses multiply-shift
//! reduction; `f64` sampling uses the standard 53-bit mantissa
//! construction. Streams are deterministic per seed but do **not**
//! match upstream `rand`'s byte-for-byte — the workspace only relies
//! on per-seed determinism.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source. Implemented by concrete generators.
pub trait RngCore {
    /// Returns the next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniform random bits.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of a [`Random`] type (e.g. `bool`).
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(0.0..tau)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // Compare 53 uniform bits against p scaled to 2^53; p == 1.0
        // always passes because the sample is at most 2^53 - 1.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Random {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() >> 31 == 1
    }
}
impl Random for u32 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Random for u64 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Random for f64 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    // Multiply-shift reduction (Lemire); bias is < 2^-64 * span, far
    // below anything the workspace's statistical uses can observe.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize);

macro_rules! sample_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
sample_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}
impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// The traits most code wants in scope, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Random, Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&y));
            let z = rng.gen_range(0usize..5);
            assert!(z < 5);
        }
    }

    #[test]
    fn gen_bool_handles_degenerate_probabilities() {
        let mut rng = Lcg(7);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Lcg(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
