//! Vendored ChaCha8-based RNG (offline stand-in for `rand_chacha`).
//!
//! Implements the actual ChaCha stream cipher core (Bernstein, 2008)
//! with 8 rounds, so the workspace's seeded circuit generators get a
//! well-mixed, reproducible stream. The seed expansion follows
//! SplitMix64 as in `rand`'s `seed_from_u64`, but output streams are
//! not guaranteed byte-compatible with upstream `rand_chacha` — the
//! workspace only relies on per-seed determinism.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A cryptographically-strong-enough deterministic RNG: ChaCha with 8
/// rounds, 256-bit key, 64-bit counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 16-word ChaCha input state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Buffered output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    /// Builds a generator from a 256-bit key.
    pub fn from_seed(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Words 12..13 are the block counter, 14..15 the nonce (zero).
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..Self::ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (i, word) in x.iter().enumerate() {
            self.buf[i] = word.wrapping_add(self.state[i]);
        }
        // Increment the 64-bit block counter.
        self.state[12] = self.state[12].wrapping_add(1);
        if self.state[12] == 0 {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as rand does for seed_from_u64.
        let mut key = [0u8; 32];
        let mut s = seed;
        for chunk in key.chunks_exact_mut(8) {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        ChaCha8Rng::from_seed(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(9);
            (0..64).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(9);
            (0..64).map(|_| r.next_u32()).collect()
        };
        let c: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(10);
            (0..64).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_round_chacha_constant_check() {
        // The raw state must start with the ChaCha constants.
        let r = ChaCha8Rng::from_seed([0; 32]);
        assert_eq!(r.state[0], 0x61707865);
    }

    #[test]
    fn stream_is_roughly_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| r.next_u32().count_ones()).sum();
        // 32,000 bits, expect ~16,000 ones.
        assert!((15_000..17_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn works_with_rng_trait_sampling() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[r.gen_range(0usize..6)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "counts = {counts:?}");
    }
}
