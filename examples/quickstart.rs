//! Quickstart: run one NISQ benchmark through the QCCD design toolflow.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's L6 device (six linear traps, capacity 20), compiles
//! the Bernstein–Vazirani benchmark onto it and simulates the execution
//! with the default FM-gate physical model, printing the paper's key
//! metrics: runtime, fidelity and device heating.

use qccd::Toolflow;
use qccd_circuit::generators;
use qccd_device::presets;
use qccd_physics::PhysicalModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A candidate QCCD architecture (Fig. 3 input #1).
    let device = presets::l6(20);
    println!("device: {device}");

    // 2. A NISQ application (Fig. 3 input #2): BV on 64 qubits.
    let circuit = generators::bv_paper();
    println!(
        "circuit: {} ({} qubits, {} two-qubit gates)",
        circuit.name(),
        circuit.num_qubits(),
        circuit.two_qubit_gate_count()
    );

    // 3. Realistic performance models (Fig. 3 input #3).
    let model = PhysicalModel::default();

    // Compile + simulate.
    let toolflow = Toolflow::new(device, model);
    let report = toolflow.run(&circuit)?;

    println!("\n{report}");
    println!(
        "\nshuttling: {} splits, {} moves ({} junction crossings), {} merges",
        report.counts.splits,
        report.counts.moves,
        report.counts.junction_crossings,
        report.counts.merges
    );
    println!(
        "reliability: fidelity {:.4}, dominated by {}",
        report.fidelity(),
        if report.ms_motional_error_sum > report.ms_background_error_sum {
            "motional-mode (heating) error"
        } else {
            "background heating error"
        }
    );
    Ok(())
}
