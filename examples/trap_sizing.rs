//! Trap-sizing study (the Fig. 6 question, §IX-A): how does per-trap
//! capacity affect runtime and reliability?
//!
//! ```text
//! cargo run --release --example trap_sizing [app]
//! ```
//!
//! Sweeps capacities 14–34 on the linear L6 device for one benchmark
//! (default: supremacy) and prints the capacity/runtime/fidelity/heating
//! series the paper plots.

use qccd::sweep::capacity_sweep;
use qccd_circuit::generators::Benchmark;
use qccd_compiler::CompilerConfig;
use qccd_device::presets;
use qccd_physics::PhysicalModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "supremacy".into())
        .parse()?;
    let circuit = bench.build();
    println!(
        "trap sizing study: {} ({} qubits) on L6, FM gates, GS reordering\n",
        circuit.name(),
        circuit.num_qubits()
    );

    let capacities: Vec<u32> = (14..=34).step_by(2).collect();
    let points = capacity_sweep(
        &circuit,
        &capacities,
        &PhysicalModel::default(),
        &CompilerConfig::default(),
        presets::l6,
    );

    println!(
        "{:>9} {:>11} {:>13} {:>13} {:>9}",
        "capacity", "time (s)", "fidelity", "peak n̄", "shuttles"
    );
    for p in points {
        match p.outcome {
            Ok(r) => println!(
                "{:>9} {:>11.4} {:>13.4e} {:>13.3} {:>9}",
                p.capacity,
                r.total_time_s(),
                r.fidelity(),
                r.peak_motional_energy,
                r.counts.splits
            ),
            Err(e) => println!("{:>9}  infeasible: {e}", p.capacity),
        }
    }
    println!(
        "\npaper takeaway: a 15–25 ion sweet spot balances communication \
         (dominates small traps) against heating hot spots and laser-beam \
         instability (dominate large traps)."
    );
    Ok(())
}
