//! OpenQASM interface: import a circuit from OpenQASM 2.0 source, run it
//! through the toolflow, and export a generated benchmark back to QASM —
//! the front-end path the paper uses to consume Cirq/ScaffCC programs.
//!
//! ```text
//! cargo run --release --example qasm_roundtrip [file.qasm]
//! ```

use qccd::Toolflow;
use qccd_circuit::{generators, qasm};
use qccd_device::presets;
use qccd_physics::PhysicalModel;

const GHZ: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[8];
creg c[8];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
cx q[4], q[5];
cx q[5], q[6];
cx q[6], q[7];
barrier q;
measure q -> c;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Import: from a file if given, else the built-in GHZ-8 program.
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => GHZ.to_owned(),
    };
    let mut circuit = qasm::parse(&source)?;
    circuit.set_name("imported");
    println!(
        "imported {} qubits, {} two-qubit gates, {} measurements",
        circuit.num_qubits(),
        circuit.two_qubit_gate_count(),
        circuit.measure_count()
    );

    let report = Toolflow::new(presets::l6(20), PhysicalModel::default()).run(&circuit)?;
    println!("{report}\n");

    // Export: serialize a generated benchmark back to OpenQASM.
    let bv = generators::bv(&[true; 7]);
    let text = qasm::write(&bv);
    println!("--- {} as OpenQASM ---\n{text}", bv.name());

    // And prove the round trip.
    let back = qasm::parse(&text)?;
    assert_eq!(back.two_qubit_gate_count(), bv.two_qubit_gate_count());
    println!("round trip ok: {} operations preserved", back.len());
    Ok(())
}
