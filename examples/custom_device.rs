//! Building a custom QCCD topology with [`qccd_device::DeviceBuilder`]:
//! a T-shaped three-trap device with one Y junction, plus a comparison
//! against linear and grid presets of the same total capacity.
//!
//! ```text
//! cargo run --release --example custom_device
//! ```

use qccd::Toolflow;
use qccd_circuit::generators;
use qccd_device::{Device, DeviceBuilder, Side};
use qccd_physics::PhysicalModel;

fn t_device(capacity: u32) -> Result<Device, qccd_device::BuildError> {
    // Three traps around one Y junction:
    //
    //   T0 ──┐
    //        J0 ── T2
    //   T1 ──┘
    let mut b = DeviceBuilder::new("T3");
    let t0 = b.add_trap(capacity);
    let t1 = b.add_trap(capacity);
    let t2 = b.add_trap(capacity);
    let j = b.add_junction();
    b.connect((t0, Side::Right), j, 2)?;
    b.connect((t1, Side::Right), j, 2)?;
    b.connect((t2, Side::Left), j, 2)?;
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = t_device(16)?;
    println!("custom device: {device}");

    // Devices are plain data: the same topology round-trips through
    // JSON, so it can live in a file instead of Rust code (this exact
    // device is checked in as examples/devices/t3_y_junction.json and
    // runnable via `cargo run -p qccd-bench --bin run -- --device ...`).
    let json = serde_json::to_string_pretty(&device)?;
    let reloaded = Device::from_json(&json)?;
    assert_eq!(reloaded, device);
    println!("JSON round trip: ok ({} bytes)", json.len());
    for a in device.trap_ids() {
        for b in device.trap_ids() {
            if a < b {
                let route = device.route(a, b)?;
                println!(
                    "  route {a} -> {b}: {} segment units, {} junction crossing(s)",
                    route.total_length_units(),
                    route.junction_count()
                );
            }
        }
    }

    // Run a 40-qubit QAOA instance and compare against a 3-trap linear
    // device with the same capacities.
    let circuit = generators::qaoa(40, 4, 11);
    let linear = qccd_device::presets::linear(3, 16, 4);

    let custom_report = Toolflow::new(device, PhysicalModel::default()).run(&circuit)?;
    let linear_report = Toolflow::new(linear, PhysicalModel::default()).run(&circuit)?;

    println!("\n{:<10} {:>11} {:>13}", "device", "time (s)", "fidelity");
    println!(
        "{:<10} {:>11.4} {:>13.3e}",
        "T3",
        custom_report.total_time_s(),
        custom_report.fidelity()
    );
    println!(
        "{:<10} {:>11.4} {:>13.3e}",
        "L3",
        linear_report.total_time_s(),
        linear_report.fidelity()
    );
    Ok(())
}
