//! Communication-topology study (the Fig. 7 question, §IX-B): linear L6
//! versus grid G2x3 across the benchmark suite.
//!
//! ```text
//! cargo run --release --example topology_comparison [capacity]
//! ```
//!
//! The headline effect: applications with irregular long-range
//! communication (SquareRoot) benefit enormously from the grid's
//! junction fabric, which avoids the linear device's intermediate-trap
//! merge/reorder/split sequences and their motional heating.

use qccd::Toolflow;
use qccd_circuit::generators::Benchmark;
use qccd_device::presets;
use qccd_physics::PhysicalModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20);
    println!("topology study at capacity {capacity}: L6 vs G2x3 (FM gates, GS reordering)\n");

    println!(
        "{:<12} {:>11} {:>11} {:>13} {:>13} {:>9} {:>9}",
        "app", "t-linear", "t-grid", "F-linear", "F-grid", "n̄-lin", "n̄-grid"
    );
    for bench in Benchmark::ALL {
        let circuit = bench.build();
        let linear = Toolflow::new(presets::l6(capacity), PhysicalModel::default());
        let grid = Toolflow::new(presets::g2x3(capacity), PhysicalModel::default());
        match (linear.run(&circuit), grid.run(&circuit)) {
            (Ok(l), Ok(g)) => println!(
                "{:<12} {:>10.4}s {:>10.4}s {:>13.3e} {:>13.3e} {:>9.2} {:>9.2}",
                bench.name(),
                l.total_time_s(),
                g.total_time_s(),
                l.fidelity(),
                g.fidelity(),
                l.peak_motional_energy,
                g.peak_motional_energy
            ),
            (l, g) => println!(
                "{:<12} linear: {:?} grid: {:?}",
                bench.name(),
                l.err().map(|e| e.to_string()),
                g.err().map(|e| e.to_string())
            ),
        }
    }
    println!(
        "\npaper takeaway: topology must be co-designed with the application \
         mix; nearest-neighbour workloads (QAOA) run well on cheap linear \
         devices, irregular workloads (SquareRoot) want a grid."
    );
    Ok(())
}
