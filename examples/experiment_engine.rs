//! The declarative experiment engine, end to end: author a spec in
//! code (the JSON form is identical — see `examples/experiments/`),
//! run it twice against a result cache, and read the projected
//! artifact.
//!
//! ```text
//! cargo run --release --example experiment_engine
//! ```

use qccd::engine::{
    run_spec, CircuitSpec, ConfigSpec, DeviceSpec, Engine, EngineOptions, ExperimentSpec,
    ModelSpec, Projection,
};
use qccd_circuit::generators::Benchmark;

fn main() {
    // A custom study no preset covers: how do the 16 compiler-policy
    // pipelines fare for BV on both topology families at one capacity?
    let spec = ExperimentSpec {
        name: "bv-policy-matrix".into(),
        projection: Projection::Cells,
        circuits: vec![CircuitSpec::Benchmark(Benchmark::Bv)],
        capacities: vec![],
        devices: vec![
            DeviceSpec::Preset {
                family: "l6".into(),
                capacity: Some(17),
            },
            DeviceSpec::Preset {
                family: "g2x3".into(),
                capacity: Some(17),
            },
        ],
        configs: vec![ConfigSpec::PolicyGrid { buffer_slots: 2 }],
        models: vec![ModelSpec::Default],
        kernel: None,
    };
    // The JSON form is exactly what `run --spec` consumes:
    println!(
        "spec:\n{}\n",
        serde_json::to_string_pretty(&spec).expect("specs serialize")
    );

    let cache = std::env::temp_dir().join("qccd-example-engine-cache");
    let engine = Engine::with_options(EngineOptions {
        cache_dir: Some(cache.clone()),
        verbose: true,
        ..EngineOptions::default()
    });

    let first = run_spec(&spec, &engine).expect("spec expands");
    println!(
        "first run:  {} (32 policy-combo cells)",
        first.stats.summary()
    );
    let second = run_spec(&spec, &engine).expect("spec expands");
    println!("second run: {} — all cache hits", second.stats.summary());
    assert_eq!(second.stats.executed, 0);

    // The Cells projection is a plain table: one row per grid cell.
    let table = second.artifact.into_table();
    println!("\n{table}");

    let _ = std::fs::remove_dir_all(&cache);
}
