//! Microarchitecture study (the Fig. 8 question, §X): which two-qubit
//! gate implementation (AM1/AM2/PM/FM) and chain-reordering method
//! (GS/IS) suit which application?
//!
//! ```text
//! cargo run --release --example microarch_study [app] [capacity]
//! ```

use qccd::Toolflow;
use qccd_circuit::generators::Benchmark;
use qccd_compiler::{CompilerConfig, ReorderMethod};
use qccd_device::presets;
use qccd_physics::{GateImpl, PhysicalModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "qft".into())
        .parse()?;
    let capacity: u32 = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20);
    let circuit = bench.build();
    println!(
        "microarchitecture study: {} on L6({capacity})\n",
        circuit.name()
    );

    println!(
        "{:<10} {:>11} {:>13} {:>9} {:>9}",
        "config", "time (s)", "fidelity", "swaps", "ionswaps"
    );
    for reorder in ReorderMethod::ALL {
        // The executable depends on the reorder method, not the gate
        // implementation: compile once per method, simulate per gate.
        let config = CompilerConfig::with_reorder(reorder);
        let exe = Toolflow::with_config(presets::l6(capacity), PhysicalModel::default(), config)
            .compile(&circuit)?;
        for gate in GateImpl::ALL {
            let tf = Toolflow::with_config(
                presets::l6(capacity),
                PhysicalModel::with_gate(gate),
                config,
            );
            let r = tf.simulate(&exe)?;
            println!(
                "{:<10} {:>11.4} {:>13.3e} {:>9} {:>9}",
                format!("{}-{}", gate.name(), reorder.name()),
                r.total_time_s(),
                r.fidelity(),
                r.counts.swap_gates,
                r.counts.ion_swaps
            );
        }
    }
    println!(
        "\npaper takeaway: the best gate implementation is application- \
         dependent (AM2 for short-range workloads, FM/PM for long-range), \
         and gate-based swapping beats physical ion swapping — so QCCD \
         microarchitecture should be reconfigurable per application."
    );
    Ok(())
}
