//! The Table II suite through the OpenQASM interface: exporting a
//! benchmark and re-importing it must produce identical toolflow results
//! (the paper consumes all its workloads through this interface).

use qccd::Toolflow;
use qccd_circuit::{generators::Benchmark, qasm};
use qccd_device::presets;
use qccd_physics::PhysicalModel;

#[test]
fn imported_circuits_reproduce_native_results() {
    // The two cheapest suite members keep this test quick while covering
    // both parametric rotations (QAOA) and plain Cliffords (BV).
    for bench in [Benchmark::Bv, Benchmark::Qaoa] {
        let native = bench.build();
        let text = qasm::write(&native);
        let mut imported = qasm::parse(&text).expect("suite QASM reparses");
        imported.set_name(native.name());

        let tf = Toolflow::new(presets::l6(20), PhysicalModel::default());
        let native_report = tf.run(&native).expect("native runs");
        let imported_report = tf.run(&imported).expect("imported runs");
        assert_eq!(native_report, imported_report, "{bench}");
    }
}

#[test]
fn full_suite_survives_qasm_round_trip() {
    for bench in Benchmark::ALL {
        let native = bench.build();
        let back = qasm::parse(&qasm::write(&native)).expect("reparses");
        assert_eq!(back.num_qubits(), native.num_qubits(), "{bench}");
        assert_eq!(back.len(), native.len(), "{bench}");
        assert_eq!(
            back.two_qubit_gate_count(),
            native.two_qubit_gate_count(),
            "{bench}"
        );
    }
}
