//! Property-based tests over the whole toolflow: any random circuit that
//! fits a device must compile and simulate with its invariants intact.

use proptest::prelude::*;
use qccd::sweep::policy_grid;
use qccd::Toolflow;
use qccd_circuit::{generators, qasm};
use qccd_compiler::{compile, CompilerConfig};
use qccd_device::presets;
use qccd_physics::PhysicalModel;

/// The satellite grid property: for every (preset device × generator
/// circuit × policy combination) cell, `compile()` output passes
/// `simulate()` without a `SimError` and the split/merge/move
/// bookkeeping balances.
#[test]
fn every_policy_combination_simulates_cleanly_on_every_preset() {
    let devices = [presets::l6(8), presets::g2x3(8)];
    let circuits = [
        generators::qaoa(18, 1, 3),
        generators::bv(&[true; 15]),
        generators::qft(14),
        generators::random_circuit(20, 120, 0.5, 17),
    ];
    let model = PhysicalModel::default();
    for device in &devices {
        for circuit in &circuits {
            for config in policy_grid(2) {
                let cell = format!(
                    "{} × {} × {}",
                    device.name(),
                    circuit.name(),
                    config.policy_label()
                );
                let exe = compile(circuit, device, &config)
                    .unwrap_or_else(|e| panic!("{cell}: compile failed: {e}"));
                let counts = exe.counts();
                assert_eq!(counts.splits, counts.merges, "{cell}");
                assert_eq!(counts.splits, counts.moves, "{cell}");
                assert_eq!(
                    counts.two_qubit_gates,
                    circuit.two_qubit_gate_count(),
                    "{cell}"
                );
                let report = qccd_sim::simulate(&exe, device, &model)
                    .unwrap_or_else(|e| panic!("{cell}: simulate failed: {e}"));
                assert!(
                    report.fidelity() >= 0.0 && report.fidelity() <= 1.0,
                    "{cell}"
                );
                assert!(report.total_time_us.is_finite(), "{cell}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits compile and simulate on the linear topology with
    /// conserved shuttle bookkeeping and sane metrics, under a randomly
    /// drawn policy pipeline.
    #[test]
    fn random_circuits_run_on_linear(
        n in 2u32..24,
        ops in 1usize..150,
        frac in 0.0f64..0.8,
        seed in 0u64..1000,
        combo in 0usize..16,
    ) {
        let circuit = generators::random_circuit(n, ops, frac, seed);
        let tf = Toolflow::with_config(
            presets::l6(8),
            PhysicalModel::default(),
            policy_grid(2)[combo],
        );
        let r = tf.run(&circuit).expect("fits and runs");
        prop_assert_eq!(r.counts.splits, r.counts.merges);
        prop_assert_eq!(r.counts.splits, r.counts.moves);
        prop_assert_eq!(r.counts.two_qubit_gates, circuit.two_qubit_gate_count());
        prop_assert!(r.fidelity() >= 0.0 && r.fidelity() <= 1.0);
        prop_assert!(r.total_time_us.is_finite() && r.total_time_us >= 0.0);
        prop_assert!(r.peak_motional_energy >= 0.0);
        prop_assert!(r.time.compute_us + r.time.communication_us <= r.total_time_us + 1e-6);
    }

    /// The same circuits run on the grid; linear devices never cross
    /// junctions, grids never pass through intermediate traps.
    #[test]
    fn random_circuits_run_on_grid(
        n in 2u32..24,
        ops in 1usize..120,
        seed in 0u64..1000,
    ) {
        let circuit = generators::random_circuit(n, ops, 0.5, seed);
        let tf = Toolflow::new(presets::g2x3(8), PhysicalModel::default());
        let r = tf.run(&circuit).expect("fits and runs");
        // On the grid every shuttle is exactly one leg, so split count is
        // bounded by the number of moves and reorders only happen at the
        // source trap.
        prop_assert_eq!(r.counts.splits, r.counts.moves);
        prop_assert!(r.fidelity() <= 1.0);
    }

    /// The final ion-to-qubit assignment is always a permutation: no
    /// quantum state is lost or duplicated by reordering swaps.
    #[test]
    fn final_mapping_is_a_permutation(
        n in 2u32..20,
        ops in 1usize..120,
        seed in 0u64..1000,
    ) {
        let circuit = generators::random_circuit(n, ops, 0.6, seed);
        let exe = compile(&circuit, &presets::l6(8), &CompilerConfig::default())
            .expect("compiles");
        let mut seen = vec![false; n as usize];
        for &q in exe.final_qubit_of_ion() {
            prop_assert!(q < n, "qubit {} out of range", q);
            prop_assert!(!seen[q as usize], "qubit {} duplicated", q);
            seen[q as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// OpenQASM round-trips preserve circuit structure for arbitrary
    /// generated circuits.
    #[test]
    fn qasm_round_trip_preserves_structure(
        n in 1u32..20,
        ops in 0usize..120,
        seed in 0u64..1000,
    ) {
        let frac = if n >= 2 { 0.4 } else { 0.0 };
        let circuit = generators::random_circuit(n, ops, frac, seed);
        let text = qasm::write(&circuit);
        let back = qasm::parse(&text).expect("reparses");
        prop_assert_eq!(back.num_qubits(), circuit.num_qubits());
        prop_assert_eq!(back.len(), circuit.len());
        prop_assert_eq!(back.two_qubit_gate_count(), circuit.two_qubit_gate_count());
        prop_assert_eq!(back.measure_count(), circuit.measure_count());
    }

    /// Reliability is monotone in the error model: doubling the beam
    /// instability never improves fidelity.
    #[test]
    fn fidelity_monotone_in_beam_instability(
        n in 4u32..20,
        ops in 10usize..100,
        seed in 0u64..1000,
    ) {
        let circuit = generators::random_circuit(n, ops, 0.5, seed);
        let exe = compile(&circuit, &presets::l6(8), &CompilerConfig::default())
            .expect("compiles");
        let base_model = PhysicalModel::default();
        let mut noisy_model = base_model;
        noisy_model.fidelity.a0 *= 2.0;
        let device = presets::l6(8);
        let base = qccd_sim::simulate(&exe, &device, &base_model).expect("simulates");
        let noisy = qccd_sim::simulate(&exe, &device, &noisy_model).expect("simulates");
        prop_assert!(noisy.log_fidelity <= base.log_fidelity + 1e-12);
        // Timing is unaffected by the error model.
        prop_assert_eq!(base.total_time_us, noisy.total_time_us);
    }
}
