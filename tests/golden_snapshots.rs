//! Golden snapshots of the paper artifacts' `--json` dumps.
//!
//! The studies behind Tables I–II and Figs. 6–8 are regenerated on
//! every run; these tests pin their JSON serializations to committed
//! files so a silent drift in the heating/fidelity/timing models (or in
//! the compiler) breaks the build instead of the paper claims. Figures
//! are pinned at the `--quick` capacity set (the same three design
//! points the CI smoke run uses); the full sweeps go through identical
//! code paths.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_snapshots
//! ```
//!
//! then commit the diff under `tests/goldens/` (and
//! `examples/devices/`) together with the change that caused it.
//!
//! The snapshots also round-trip through `serde_json::from_str`, so the
//! deserialization path is exercised against every committed artifact.
//!
//! Note: a few model formulas use `powf`/`ln`/`exp`, whose last-bit
//! behavior follows the platform libm; the goldens pin the toolchain's
//! glibc results. If a libm update ever shifts a digit, the failure
//! message names the first drifted line — regenerate and review.

use qccd::experiments::{fig6, fig7, fig8, table1, table2, QUICK_CAPACITIES};
use qccd_circuit::generators;
use qccd_device::{presets, Device, DeviceBuilder, Side};
use qccd_physics::PhysicalModel;
use serde::Serialize;
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Compares `actual` against the committed golden at `rel`, or rewrites
/// the golden when `UPDATE_GOLDENS` is set.
fn check_golden(rel: &str, actual: &str) {
    let path = repo_path(rel);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("goldens live in a directory"))
            .expect("golden directory is creatable");
        std::fs::write(&path, actual).expect("golden is writable");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden `{rel}` ({e}); regenerate with \
             `UPDATE_GOLDENS=1 cargo test --test golden_snapshots`"
        )
    });
    if expected != actual {
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| i + 1)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()) + 1);
        let show = |s: &str| s.lines().nth(line - 1).unwrap_or("<missing>").to_owned();
        panic!(
            "golden `{rel}` is stale (first drift at line {line}):\n  \
             golden: {}\n  actual: {}\n\
             If the change is intentional, regenerate with \
             `UPDATE_GOLDENS=1 cargo test --test golden_snapshots` and commit the diff.",
            show(&expected),
            show(actual),
        );
    }
}

/// Serializes an artifact the exact way the harness bins' `--json` flag
/// does, checks it against its golden, and round-trips it through the
/// parser.
fn pin<T>(rel: &str, artifact: &T)
where
    T: Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string_pretty(artifact).expect("artifacts serialize");
    check_golden(rel, &json);
    let reparsed: T = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("golden `{rel}` does not round-trip: {e}"));
    assert_eq!(
        &reparsed, artifact,
        "round trip of `{rel}` changed the artifact"
    );
}

#[test]
fn table1_matches_golden() {
    pin("tests/goldens/table1.json", &table1::generate_paper());
}

#[test]
fn table2_matches_golden() {
    pin("tests/goldens/table2.json", &table2::generate());
}

#[test]
fn fig6_quick_matches_golden() {
    pin(
        "tests/goldens/fig6_quick.json",
        &fig6::generate(&QUICK_CAPACITIES),
    );
}

#[test]
fn fig7_quick_matches_golden() {
    pin(
        "tests/goldens/fig7_quick.json",
        &fig7::generate(&QUICK_CAPACITIES),
    );
}

#[test]
fn fig8_quick_matches_golden() {
    pin(
        "tests/goldens/fig8_quick.json",
        &fig8::generate(&QUICK_CAPACITIES),
    );
}

/// The checked-in example device file is the serialization of the
/// paper's L6 device at capacity 20; loading it must reproduce the
/// preset exactly, and the toolflow must behave identically on both.
#[test]
fn example_device_file_loads_and_matches_the_preset() {
    let rel = "examples/devices/l6_cap20.json";
    let preset = presets::l6(20);
    check_golden(
        rel,
        &serde_json::to_string_pretty(&preset).expect("serializes"),
    );

    let text = std::fs::read_to_string(repo_path(rel)).expect("example device file exists");
    let loaded: Device = serde_json::from_str(&text).expect("example device file parses");
    assert_eq!(loaded, preset);
    let validated = Device::from_json(&text).expect("example device file validates");
    assert_eq!(validated, preset);

    // Same end-to-end behavior: compile + simulate a benchmark on the
    // JSON-loaded device and on the preset-built equivalent.
    let circuit = generators::qaoa(24, 1, 5);
    let from_file = qccd::Toolflow::new(loaded, PhysicalModel::default())
        .run(&circuit)
        .expect("fits");
    let from_preset = qccd::Toolflow::new(preset, PhysicalModel::default())
        .run(&circuit)
        .expect("fits");
    assert_eq!(from_file, from_preset);
}

/// A topology the presets cannot express (three traps around a Y
/// junction): pinned as a second example file and loadable end to end.
#[test]
fn example_t3_device_file_loads_and_runs() {
    let rel = "examples/devices/t3_y_junction.json";
    let mut b = DeviceBuilder::new("T3");
    let t0 = b.add_trap(16);
    let t1 = b.add_trap(16);
    let t2 = b.add_trap(16);
    let j = b.add_junction();
    b.connect((t0, Side::Right), j, 2).expect("fresh port");
    b.connect((t1, Side::Right), j, 2).expect("fresh port");
    b.connect((t2, Side::Left), j, 2).expect("fresh port");
    let built = b.build().expect("valid topology");
    check_golden(
        rel,
        &serde_json::to_string_pretty(&built).expect("serializes"),
    );

    let text = std::fs::read_to_string(repo_path(rel)).expect("example device file exists");
    let loaded = Device::from_json(&text).expect("example device file validates");
    assert_eq!(loaded, built);
    assert_eq!(loaded.junction_count(), 1);

    let report = qccd::Toolflow::new(loaded, PhysicalModel::default())
        .run(&generators::qaoa(24, 1, 3))
        .expect("fits on 48 slots");
    assert!(report.fidelity() > 0.0);
}

/// The committed experiment-spec files are the serializations of the
/// preset `ExperimentSpec` constructors — the declarative form of every
/// paper artifact. Pinned golden-style (regenerate with
/// `UPDATE_GOLDENS=1`), and each must round-trip through the parser to
/// the exact preset.
#[test]
fn example_experiment_specs_match_the_presets() {
    use qccd::engine::ExperimentSpec;
    use qccd::experiments::PAPER_CAPACITIES;
    let base = qccd_compiler::CompilerConfig::default();
    for (rel, spec) in [
        ("examples/experiments/table1.json", ExperimentSpec::table1()),
        ("examples/experiments/table2.json", ExperimentSpec::table2()),
        (
            "examples/experiments/fig6.json",
            ExperimentSpec::fig6(&PAPER_CAPACITIES),
        ),
        (
            "examples/experiments/fig7.json",
            ExperimentSpec::fig7(&PAPER_CAPACITIES),
        ),
        (
            "examples/experiments/fig8.json",
            ExperimentSpec::fig8(&PAPER_CAPACITIES),
        ),
        (
            "examples/experiments/ablation_buffer.json",
            ExperimentSpec::ablation_buffer(&base),
        ),
        (
            "examples/experiments/ablation_heating.json",
            ExperimentSpec::ablation_heating(&PAPER_CAPACITIES, &base),
        ),
        (
            "examples/experiments/ablation_junction.json",
            ExperimentSpec::ablation_junction(&base),
        ),
        (
            "examples/experiments/ablation_device_size.json",
            ExperimentSpec::ablation_device_size(&base),
        ),
        (
            "examples/experiments/ablation_policy.json",
            ExperimentSpec::ablation_policy(base.buffer_slots),
        ),
    ] {
        check_golden(
            rel,
            &serde_json::to_string_pretty(&spec).expect("specs serialize"),
        );
        let text = std::fs::read_to_string(repo_path(rel)).expect("spec file exists");
        let loaded = ExperimentSpec::from_json(&text).unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert_eq!(loaded, spec, "{rel} does not round-trip to its preset");
    }
}

/// The hand-written compact device example loads to the same device as
/// the full-shape example (and the preset both serialize).
#[test]
fn example_compact_device_file_matches_the_preset() {
    let text = std::fs::read_to_string(repo_path("examples/devices/l6_cap20_compact.json"))
        .expect("compact example exists");
    let loaded = Device::from_json(&text).expect("compact example loads");
    assert_eq!(loaded, presets::l6(20));
}

/// The figure goldens must themselves be loadable as `Figure`s from
/// disk — the consumer-side contract for anyone plotting the dumps.
#[test]
fn committed_goldens_parse_from_disk() {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        return; // files may be mid-rewrite in this mode
    }
    for rel in [
        "tests/goldens/fig6_quick.json",
        "tests/goldens/fig7_quick.json",
        "tests/goldens/fig8_quick.json",
    ] {
        let text = std::fs::read_to_string(repo_path(rel)).expect("golden exists");
        let fig: qccd::experiments::Figure =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert!(!fig.panels.is_empty(), "{rel} has no panels");
        for panel in &fig.panels {
            assert_eq!(
                panel.x.len(),
                QUICK_CAPACITIES.len(),
                "{rel} panel {}",
                panel.id
            );
        }
    }
    for rel in ["tests/goldens/table1.json", "tests/goldens/table2.json"] {
        let text = std::fs::read_to_string(repo_path(rel)).expect("golden exists");
        let table: qccd::experiments::Table =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert!(!table.rows.is_empty(), "{rel} has no rows");
    }
}
