//! Differential pinning of the two simulation kernels.
//!
//! The discrete-event kernel (`qccd_sim::des`) must produce
//! [`SimReport`]s **field-for-field identical** to the legacy
//! ready-time scan — same values, same bits — for every executable the
//! compiler can emit. This suite drives both kernels over:
//!
//! * every golden artifact spec (the committed
//!   `examples/experiments/*.json` presets, at the quick capacities the
//!   goldens pin), end to end through the experiment engine;
//! * the full satellite matrix: (preset device × generator circuit ×
//!   all 16 policy-pipeline combinations);
//! * proptest-driven random circuits, where an interval-recording
//!   [`EventHook`] additionally proves the event kernel never
//!   double-books a segment or junction;
//! * the event queue itself: popping order is the `(time, seq)` total
//!   order under arbitrary interleaved pushes.
//!
//! Reports are compared by their canonical JSON serialization (every
//! float rendered through [`qccd_sim::canonical_float`]'s
//! `serde_json` shortest-round-trip form), so the comparison is exactly
//! as strict as the committed goldens.

use proptest::prelude::*;
use qccd::engine::{run_spec, Engine, EngineOptions, ExperimentSpec, SpecRun};
use qccd::experiments::QUICK_CAPACITIES;
use qccd::sweep::policy_grid;
use qccd_circuit::generators;
use qccd_compiler::{compile, CompilerConfig, Inst};
use qccd_device::presets;
use qccd_physics::PhysicalModel;
use qccd_sim::{
    simulate, simulate_des, simulate_des_with_hook, Event, EventHook, EventKind, EventQueue,
    SimKernel, SimReport,
};

/// The two reports must agree field for field, bit for bit.
fn assert_reports_identical(legacy: &SimReport, des: &SimReport, cell: &str) {
    assert_eq!(legacy, des, "kernels diverged on {cell}");
    assert_eq!(
        serde_json::to_string_pretty(legacy).unwrap(),
        serde_json::to_string_pretty(des).unwrap(),
        "kernels bit-diverged on {cell}"
    );
}

fn run_with_kernel(spec: &ExperimentSpec, kernel: SimKernel) -> SpecRun {
    let engine = Engine::with_options(EngineOptions {
        kernel,
        ..EngineOptions::default()
    });
    run_spec(spec, &engine).unwrap_or_else(|e| panic!("{} ({kernel}): {e}", spec.name))
}

/// Every golden artifact spec — the committed
/// `examples/experiments/*.json` presets — evaluated by both kernels,
/// with every per-job [`SimReport`] and the projected artifact required
/// identical. Figure specs run at the quick capacities, exactly like
/// the committed goldens.
#[test]
fn golden_artifact_specs_agree_across_kernels() {
    let base = CompilerConfig::default();
    for spec in [
        ExperimentSpec::table1(),
        ExperimentSpec::table2(),
        ExperimentSpec::fig6(&QUICK_CAPACITIES),
        ExperimentSpec::fig7(&QUICK_CAPACITIES),
        ExperimentSpec::fig8(&QUICK_CAPACITIES),
        ExperimentSpec::ablation_buffer(&base),
        ExperimentSpec::ablation_heating(&QUICK_CAPACITIES, &base),
        ExperimentSpec::ablation_junction(&base),
        ExperimentSpec::ablation_device_size(&base),
        ExperimentSpec::ablation_policy(base.buffer_slots),
    ] {
        let legacy = run_with_kernel(&spec, SimKernel::Legacy);
        let des = run_with_kernel(&spec, SimKernel::Des);

        let l_jobs = legacy.results.job_outcomes();
        let d_jobs = des.results.job_outcomes();
        assert_eq!(l_jobs.len(), d_jobs.len(), "{}", spec.name);
        for (j, (l, d)) in l_jobs.iter().zip(d_jobs).enumerate() {
            let cell = format!("{} job {j}", spec.name);
            match (l, d) {
                (Ok(l), Ok(d)) => assert_reports_identical(l, d, &cell),
                (l, d) => assert_eq!(l, d, "{cell}"),
            }
        }
        // The projected artifact — the thing the paper goldens pin —
        // must also serialize identically.
        assert_eq!(
            serde_json::to_string_pretty(&legacy.artifact).unwrap(),
            serde_json::to_string_pretty(&des.artifact).unwrap(),
            "{}: projected artifacts diverged",
            spec.name
        );
    }
}

/// A spec pinning `"kernel": "des"` must evaluate to the same artifact
/// as the engine-default legacy run: the spec-level switch changes the
/// execution strategy, never the result.
#[test]
fn spec_pinned_kernel_matches_engine_default() {
    let mut spec = ExperimentSpec::fig6(&[8]);
    spec.circuits.truncate(2);
    let legacy = run_spec(&spec, &Engine::new()).unwrap();
    spec.kernel = Some(SimKernel::Des);
    let des = run_spec(&spec, &Engine::new()).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&legacy.artifact).unwrap(),
        serde_json::to_string_pretty(&des.artifact).unwrap()
    );
}

/// The satellite matrix: every (preset device × generator circuit ×
/// 16-policy-combination) cell compiled once and simulated by both
/// kernels, reports required bit-identical.
#[test]
fn policy_matrix_agrees_across_kernels() {
    let devices = [presets::l6(8), presets::g2x3(8)];
    let circuits = [
        generators::qaoa(18, 1, 3),
        generators::bv(&[true; 15]),
        generators::qft(14),
        generators::random_circuit(20, 120, 0.5, 17),
    ];
    let model = PhysicalModel::default();
    for device in &devices {
        for circuit in &circuits {
            for config in policy_grid(2) {
                let cell = format!(
                    "{} × {} × {}",
                    device.name(),
                    circuit.name(),
                    config.policy_label()
                );
                let exe = compile(circuit, device, &config)
                    .unwrap_or_else(|e| panic!("{cell}: compile failed: {e}"));
                let legacy = simulate(&exe, device, &model)
                    .unwrap_or_else(|e| panic!("{cell}: legacy failed: {e}"));
                let des = simulate_des(&exe, device, &model)
                    .unwrap_or_else(|e| panic!("{cell}: des failed: {e}"));
                assert_reports_identical(&legacy, &des, &cell);
            }
        }
    }
}

/// Records the occupancy interval of every shuttle leg, keyed by the
/// instruction index, from the kernel's committed event stream.
struct LegIntervals {
    start: Vec<Option<f64>>,
    intervals: Vec<Option<(f64, f64)>>,
}

impl LegIntervals {
    fn new(len: usize) -> Self {
        LegIntervals {
            start: vec![None; len],
            intervals: vec![None; len],
        }
    }
}

impl EventHook for LegIntervals {
    fn on_event(&mut self, event: &Event) {
        match event.kind {
            EventKind::ShuttleLegStart { inst } => {
                assert!(self.start[inst].is_none(), "leg {inst} started twice");
                self.start[inst] = Some(event.time);
            }
            EventKind::ShuttleLegFinish { inst } => {
                let start = self.start[inst].expect("finish before start");
                assert!(self.intervals[inst].is_none(), "leg {inst} finished twice");
                self.intervals[inst] = Some((start, event.time));
            }
            _ => {}
        }
    }
}

/// Simulates with the DES kernel and asserts that no segment and no
/// junction is ever held by two overlapping shuttle legs — the resource
/// timelines never double-book a path element.
fn assert_no_double_booking(circuit: &qccd_circuit::Circuit, device: &qccd_device::Device) {
    let exe = compile(circuit, device, &CompilerConfig::default()).expect("compiles");
    let mut hook = LegIntervals::new(exe.len());
    simulate_des_with_hook(&exe, device, &PhysicalModel::default(), &mut hook).expect("simulates");

    // (resource kind, resource index) -> sorted occupancy intervals.
    let mut per_resource: std::collections::HashMap<(u8, u32), Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for (i, inst) in exe.instructions().iter().enumerate() {
        let Inst::Move { leg, .. } = inst else {
            continue;
        };
        let (start, end) = hook.intervals[i].expect("every leg completed");
        assert!(start <= end, "leg {i} has a negative duration");
        for s in &leg.segments {
            per_resource.entry((0, s.0)).or_default().push((start, end));
        }
        for j in &leg.junctions {
            per_resource.entry((1, j.0)).or_default().push((start, end));
        }
    }
    for ((kind, idx), mut spans) in per_resource {
        spans.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-12,
                "{} {idx} double-booked: [{}, {}) overlaps [{}, {})",
                if kind == 0 { "segment" } else { "junction" },
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }
}

/// Deterministic xorshift so the queue property draws arbitrary float
/// times (including exact ties) without a `rand` dev-dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Popping order is the (time, seq) total order under arbitrary
    /// interleaved pushes: nondecreasing times, and FIFO (ascending
    /// sequence) within every tie.
    #[test]
    fn event_queue_pops_the_time_seq_total_order(
        len in 0usize..200,
        seed in 1u64..10_000,
        tie_every in 1u64..8,
    ) {
        let mut state = seed;
        let mut queue = EventQueue::new();
        let mut pushed = Vec::with_capacity(len);
        for i in 0..len {
            // Coarse-quantized times force plenty of exact ties.
            let time = (xorshift(&mut state) % (tie_every * 8)) as f64 / tie_every as f64;
            let seq = queue.push(time, EventKind::GateStart { inst: i });
            pushed.push((time, seq));
        }
        // Sequence numbers are unique and monotone in push order.
        for w in pushed.windows(2) {
            prop_assert!(w[0].1 < w[1].1);
        }
        let mut popped = Vec::with_capacity(len);
        while let Some(event) = queue.pop() {
            popped.push((event.time, event.seq));
        }
        prop_assert_eq!(popped.len(), len);
        for w in popped.windows(2) {
            prop_assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "pop order violated: {:?} then {:?}", w[0], w[1]
            );
        }
        // Exactly the pushed (time, seq) pairs come back out.
        let mut expected = pushed;
        expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        prop_assert_eq!(popped, expected);
    }

    /// Random circuits on the linear topology: both kernels bit-agree,
    /// and the DES kernel's resource timelines never double-book a
    /// segment or junction.
    #[test]
    fn random_linear_circuits_agree_and_never_double_book(
        n in 2u32..24,
        ops in 1usize..150,
        frac in 0.0f64..0.8,
        seed in 0u64..1000,
        combo in 0usize..16,
    ) {
        let circuit = generators::random_circuit(n, ops, frac, seed);
        let device = presets::l6(8);
        let exe = compile(&circuit, &device, &policy_grid(2)[combo]).expect("compiles");
        let model = PhysicalModel::default();
        let legacy = simulate(&exe, &device, &model).expect("legacy simulates");
        let des = simulate_des(&exe, &device, &model).expect("des simulates");
        assert_reports_identical(&legacy, &des, circuit.name());
        assert_no_double_booking(&circuit, &device);
    }

    /// The same property on the grid topology, whose junction-crossing
    /// legs exercise the junction timelines.
    #[test]
    fn random_grid_circuits_agree_and_never_double_book(
        n in 2u32..24,
        ops in 1usize..120,
        seed in 0u64..1000,
    ) {
        let circuit = generators::random_circuit(n, ops, 0.5, seed);
        let device = presets::g2x3(8);
        let exe = compile(&circuit, &device, &CompilerConfig::default()).expect("compiles");
        let model = PhysicalModel::default();
        let legacy = simulate(&exe, &device, &model).expect("legacy simulates");
        let des = simulate_des(&exe, &device, &model).expect("des simulates");
        assert_reports_identical(&legacy, &des, circuit.name());
        assert_no_double_booking(&circuit, &device);
    }
}
