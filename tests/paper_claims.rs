//! Paper-scale shape checks: the qualitative findings of §IX–§X that this
//! reproduction commits to (see DESIGN.md §5 and EXPERIMENTS.md).
//!
//! These run the real 60–80 qubit benchmarks, restricted to a few design
//! points each to stay test-suite friendly.

use qccd::Toolflow;
use qccd_circuit::generators;
use qccd_compiler::{CompilerConfig, ReorderMethod};
use qccd_device::presets;
use qccd_physics::{GateImpl, PhysicalModel};
use qccd_sim::SimReport;

fn run_l6(
    circuit: &qccd_circuit::Circuit,
    capacity: u32,
    gate: GateImpl,
    reorder: ReorderMethod,
) -> SimReport {
    Toolflow::with_config(
        presets::l6(capacity),
        PhysicalModel::with_gate(gate),
        CompilerConfig::with_reorder(reorder),
    )
    .run(circuit)
    .expect("paper-scale run succeeds")
}

/// §IX-A: communication (shuttling volume) drops as traps grow.
#[test]
fn communication_decreases_with_trap_capacity() {
    let circuit = generators::supremacy_paper();
    let small = run_l6(&circuit, 14, GateImpl::Fm, ReorderMethod::GateSwap);
    let large = run_l6(&circuit, 30, GateImpl::Fm, ReorderMethod::GateSwap);
    assert!(
        small.counts.splits > 2 * large.counts.splits,
        "splits: {} vs {}",
        small.counts.splits,
        large.counts.splits
    );
}

/// §IX-A / Fig. 6g: on heated paper-scale runs the motional term dominates
/// the background term, and the per-gate motional error grows with trap
/// capacity (beam instability + hot spots).
#[test]
fn motional_error_dominates_and_grows_with_capacity() {
    let circuit = generators::supremacy_paper();
    let mid = run_l6(&circuit, 20, GateImpl::Fm, ReorderMethod::GateSwap);
    assert!(
        mid.mean_ms_motional_error() > 2.0 * mid.mean_ms_background_error(),
        "motional {} vs background {}",
        mid.mean_ms_motional_error(),
        mid.mean_ms_background_error()
    );
    let large = run_l6(&circuit, 34, GateImpl::Fm, ReorderMethod::GateSwap);
    assert!(
        large.mean_ms_motional_error() > mid.mean_ms_motional_error(),
        "motional error should grow with capacity: {} vs {}",
        large.mean_ms_motional_error(),
        mid.mean_ms_motional_error()
    );
}

/// §IX-A: low-communication applications (BV, QAOA) keep high fidelity
/// even at very low trap capacity.
#[test]
fn low_communication_apps_stay_reliable_at_small_capacity() {
    let bv = run_l6(
        &generators::bv_paper(),
        14,
        GateImpl::Fm,
        ReorderMethod::GateSwap,
    );
    assert!(bv.fidelity() > 0.3, "bv fidelity {}", bv.fidelity());
    let qaoa = run_l6(
        &generators::qaoa_paper(),
        14,
        GateImpl::Fm,
        ReorderMethod::GateSwap,
    );
    assert!(qaoa.fidelity() > 0.2, "qaoa fidelity {}", qaoa.fidelity());
    // ...while the communication-heavy QFT collapses at the same point.
    let qft = run_l6(
        &generators::qft_paper(),
        14,
        GateImpl::Fm,
        ReorderMethod::GateSwap,
    );
    assert!(qft.fidelity() < 1e-6, "qft fidelity {}", qft.fidelity());
}

/// §IX-B / Fig. 7: the grid topology dramatically improves the irregular
/// SquareRoot workload — higher fidelity and less motional heating,
/// because shuttles cross junctions instead of merging through
/// intermediate traps.
#[test]
fn squareroot_prefers_grid_topology() {
    let circuit = generators::square_root_paper();
    let linear = Toolflow::new(presets::l6(20), PhysicalModel::default())
        .run(&circuit)
        .expect("linear");
    let grid = Toolflow::new(presets::g2x3(20), PhysicalModel::default())
        .run(&circuit)
        .expect("grid");
    assert!(
        grid.fidelity() > 2.0 * linear.fidelity(),
        "grid {} vs linear {}",
        grid.fidelity(),
        linear.fidelity()
    );
    assert!(
        grid.peak_motional_energy < linear.peak_motional_energy,
        "grid heat {} vs linear {}",
        grid.peak_motional_energy,
        linear.peak_motional_energy
    );
}

/// §IX-B: nearest-neighbour QAOA runs (slightly) faster on the simpler
/// linear topology — grids pay junction-crossing time.
#[test]
fn qaoa_linear_topology_is_faster() {
    let circuit = generators::qaoa_paper();
    let linear = Toolflow::new(presets::l6(20), PhysicalModel::default())
        .run(&circuit)
        .expect("linear");
    let grid = Toolflow::new(presets::g2x3(20), PhysicalModel::default())
        .run(&circuit)
        .expect("grid");
    assert!(
        linear.total_time_us <= grid.total_time_us * 1.05,
        "linear {} vs grid {}",
        linear.total_time_us,
        grid.total_time_us
    );
}

/// §X-B / Fig. 8: gate-based swapping is at least as reliable as physical
/// ion swapping, and strictly better when reordering is needed.
#[test]
fn gs_reordering_beats_is() {
    let circuit = generators::square_root_paper();
    let gs = run_l6(&circuit, 18, GateImpl::Fm, ReorderMethod::GateSwap);
    let is = run_l6(&circuit, 18, GateImpl::Fm, ReorderMethod::IonSwap);
    assert!(
        gs.fidelity() > is.fidelity(),
        "GS {} vs IS {}",
        gs.fidelity(),
        is.fidelity()
    );
}

/// §X / Fig. 8: QAOA needs no chain reordering, so its GS and IS results
/// coincide exactly.
#[test]
fn qaoa_gs_equals_is_at_paper_scale() {
    let circuit = generators::qaoa_paper();
    let gs = run_l6(&circuit, 20, GateImpl::Fm, ReorderMethod::GateSwap);
    let is = run_l6(&circuit, 20, GateImpl::Fm, ReorderMethod::IonSwap);
    assert_eq!(gs.counts.swap_gates, 0);
    assert_eq!(is.counts.ion_swaps, 0);
    assert_eq!(gs.total_time_us, is.total_time_us);
    assert_eq!(gs.log_fidelity, is.log_fidelity);
}

/// §X-A: AM2's fast short-range gates make QAOA faster than the
/// distance-robust PM implementation, while AM1 is the slow outlier for
/// long-range workloads.
#[test]
fn gate_implementation_performance_tradeoffs() {
    let qaoa = generators::qaoa_paper();
    let am2 = run_l6(&qaoa, 20, GateImpl::Am2, ReorderMethod::GateSwap);
    let pm = run_l6(&qaoa, 20, GateImpl::Pm, ReorderMethod::GateSwap);
    assert!(
        am2.total_time_us < pm.total_time_us,
        "AM2 {} vs PM {}",
        am2.total_time_us,
        pm.total_time_us
    );

    let sq = generators::square_root_paper();
    let am1 = run_l6(&sq, 20, GateImpl::Am1, ReorderMethod::GateSwap);
    let fm = run_l6(&sq, 20, GateImpl::Fm, ReorderMethod::GateSwap);
    assert!(
        fm.fidelity() > am1.fidelity(),
        "FM {} vs AM1 {}",
        fm.fidelity(),
        am1.fidelity()
    );
}

/// Design-space spread: across the studied space, application reliability
/// varies by many orders of magnitude (the paper quotes up to five).
#[test]
fn design_space_spans_orders_of_magnitude() {
    let qft = generators::qft_paper();
    let best = Toolflow::new(presets::g2x3(22), PhysicalModel::default())
        .run(&qft)
        .expect("grid");
    let worst = run_l6(&qft, 14, GateImpl::Am1, ReorderMethod::IonSwap);
    assert!(
        best.log_fidelity - worst.log_fidelity > 5.0 * std::f64::consts::LN_10,
        "spread too small: best {} worst {}",
        best.fidelity(),
        worst.fidelity()
    );
}
