//! Smoke coverage for the workspace's build surface: the examples and
//! harness binaries must keep compiling, so doc snippets and README
//! instructions can't silently rot.
//!
//! The actual compilation happens via a nested `cargo build`; under
//! `cargo test` this is incremental (the outer invocation already
//! built most targets) and runs offline against the path-only
//! dependency graph.

use std::process::Command;

/// The examples the README's quickstart and study sections reference.
const EXAMPLES: [&str; 7] = [
    "custom_device",
    "experiment_engine",
    "microarch_study",
    "qasm_roundtrip",
    "quickstart",
    "topology_comparison",
    "trap_sizing",
];

/// The artifact-regeneration binaries in `qccd-bench`.
const BENCH_BINS: [&str; 9] = [
    "ablations",
    "all",
    "fig6",
    "fig7",
    "fig8",
    "inspect",
    "run",
    "table1",
    "table2",
];

fn cargo() -> Command {
    // Use the same cargo that is running this test.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn all_examples_and_bench_binaries_compile() {
    let mut cmd = cargo();
    cmd.args([
        "build",
        "--workspace",
        "--examples",
        "--bins",
        "--offline",
        "--quiet",
    ]);
    let status = cmd.status().expect("cargo is runnable");
    assert!(
        status.success(),
        "`cargo build --workspace --examples --bins` failed; \
         an example or harness binary no longer compiles"
    );
}

#[test]
fn lint_binary_passes_on_the_workspace() {
    // The same invocation CI's "Static analysis" step runs: the
    // committed tree must stay deny-clean through the real binary (the
    // crate's own tests cover the library entry points).
    let out = cargo()
        .args(["run", "-p", "qccd-lint", "--offline", "--quiet"])
        .output()
        .expect("cargo run -p qccd-lint runs");
    assert!(
        out.status.success(),
        "qccd-lint found deny-tier diagnostics:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn target_inventory_is_complete() {
    // `cargo metadata` enumerates every auto-discovered target without
    // compiling; this catches renamed/removed files that would silently
    // shrink the build surface the docs promise.
    let out = cargo()
        .args([
            "metadata",
            "--no-deps",
            "--format-version",
            "1",
            "--offline",
        ])
        .output()
        .expect("cargo metadata runs");
    assert!(out.status.success(), "cargo metadata failed");
    let metadata = String::from_utf8(out.stdout).expect("metadata is UTF-8");

    for example in EXAMPLES {
        let needle = format!("examples/{example}.rs");
        assert!(
            metadata.contains(&needle),
            "example target `{example}` missing from cargo metadata"
        );
    }
    for bin in BENCH_BINS {
        let needle = format!("bin/{bin}.rs");
        assert!(
            metadata.contains(&needle),
            "qccd-bench binary `{bin}` missing from cargo metadata"
        );
    }
    // The static-analysis pass CI runs (`cargo run -p qccd-lint`).
    assert!(
        metadata.contains("lint/src/main.rs"),
        "qccd-lint binary missing from cargo metadata"
    );
    for bench in [
        "toolflow",
        "compiler",
        "figures",
        "engine",
        "des_kernel",
        "flat_structures",
        "incremental",
    ] {
        let needle = format!("benches/{bench}.rs");
        assert!(
            metadata.contains(&needle),
            "criterion bench `{bench}` missing from cargo metadata"
        );
    }
}
