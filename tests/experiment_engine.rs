//! Engine/legacy equivalence and cache behavior of the declarative
//! experiment engine.
//!
//! The redesign's correctness contract: an [`ExperimentSpec`]-expanded
//! job grid must reproduce the legacy sweep helpers cell for cell, a
//! repeated run against the same cache must execute zero jobs while
//! producing byte-identical artifacts, and the committed
//! `examples/experiments/*.json` presets must drive the engine to the
//! same artifacts as the figure modules.

use proptest::prelude::*;
use qccd::engine::{
    merge_spec, run_spec, run_spec_jobs, Engine, EngineOptions, ExperimentSpec, JobGrid,
    JobOutcome, Projection, ResultCache, Shard, SpecError,
};
use qccd::sweep::{capacity_sweep, policy_grid, policy_sweep};
use qccd_circuit::generators;
use qccd_compiler::CompilerConfig;
use qccd_device::presets;
use qccd_physics::PhysicalModel;
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qccd-engine-suite-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every committed experiment spec parses, round-trips, and expands.
#[test]
fn committed_experiment_specs_load_and_expand() {
    let quick = qccd::experiments::QUICK_CAPACITIES;
    for (rel, expected_jobs) in [
        ("examples/experiments/table1.json", 0),
        ("examples/experiments/table2.json", 0),
        // The files pin the full 11-capacity paper sweeps.
        ("examples/experiments/fig6.json", 6 * 11),
        ("examples/experiments/fig7.json", 6 * 22),
        ("examples/experiments/fig8.json", 6 * 11 * 2 * 4),
        ("examples/experiments/ablation_buffer.json", 5),
        ("examples/experiments/ablation_heating.json", 11 * 2),
        ("examples/experiments/ablation_junction.json", 2 * 4),
        ("examples/experiments/ablation_device_size.json", 6),
        ("examples/experiments/ablation_policy.json", 2 * 16),
    ] {
        let spec =
            ExperimentSpec::from_file(repo_path(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
        let grid = spec.expand().unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert_eq!(grid.job_count(), expected_jobs, "{rel} job grid size");
        // Round trip: serialization is the canonical pinned form.
        let json = serde_json::to_string_pretty(&spec).unwrap();
        assert_eq!(ExperimentSpec::from_json(&json).unwrap(), spec, "{rel}");
    }
    let _ = quick;
}

/// The committed fig6 spec, capped to the quick capacities, reproduces
/// the committed golden bytes through the generic `run --spec` path.
#[test]
fn quick_capped_fig6_spec_reproduces_the_golden_bytes() {
    let mut spec = ExperimentSpec::from_file(repo_path("examples/experiments/fig6.json")).unwrap();
    spec.capacities = qccd::experiments::QUICK_CAPACITIES.to_vec();
    let run = run_spec(&spec, &Engine::new()).unwrap();
    let produced = serde_json::to_string_pretty(&run.artifact).unwrap();
    let golden = std::fs::read_to_string(repo_path("tests/goldens/fig6_quick.json")).unwrap();
    assert_eq!(produced, golden, "spec-driven fig6 drifted from the golden");
}

/// Cache acceptance: the second run of a spec executes zero jobs and
/// emits byte-identical artifact JSON.
#[test]
fn second_spec_run_is_all_cache_hits_with_identical_bytes() {
    let dir = temp_dir("cache-hit");
    let engine = Engine::with_options(EngineOptions {
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    });
    let mut spec = ExperimentSpec::fig8(&[8]);
    spec.circuits.truncate(2);
    spec.name = "fig8-mini".into();

    let first = run_spec(&spec, &engine).unwrap();
    assert_eq!(first.stats.executed, first.stats.jobs);
    assert_eq!(first.stats.jobs, 2 * 2 * 4);

    let second = run_spec(&spec, &engine).unwrap();
    assert_eq!(second.stats.executed, 0, "second run must execute nothing");
    assert_eq!(second.stats.cached, second.stats.jobs);
    assert_eq!(
        serde_json::to_string_pretty(&first.artifact).unwrap(),
        serde_json::to_string_pretty(&second.artifact).unwrap(),
        "cached artifact bytes drifted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A projection change alone (same axes) is pure post-processing: the
/// cache carries over across different projections of one grid.
#[test]
fn cache_is_shared_across_projections_of_the_same_grid() {
    let dir = temp_dir("cross-projection");
    let engine = Engine::with_options(EngineOptions {
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    });
    let mut spec = ExperimentSpec::fig6(&[8]);
    spec.circuits.truncate(1);
    let first = run_spec(&spec, &engine).unwrap();
    assert_eq!(first.stats.executed, 1);

    spec.projection = Projection::Cells;
    let second = run_spec(&spec, &engine).unwrap();
    assert_eq!(second.stats.executed, 0);
    assert!(second.artifact.as_table().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Atomic cache I/O under contention: writer threads repeatedly
/// overwrite the same entry while reader threads poll it. With the
/// temp-file + rename protocol, once the entry has been stored once, a
/// load can never miss (the old in-place `fs::write` exposed truncated
/// files that read as misses) and every load is one of the complete
/// outcomes that was actually stored.
#[test]
fn concurrent_cache_writers_never_yield_corrupt_or_missing_loads() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let dir = temp_dir("stress");
    let cache = ResultCache::open(&dir).unwrap();
    let grid = JobGrid::from_axes(
        vec![generators::bv(&[true; 6])],
        vec![presets::l6(6)],
        vec![CompilerConfig::default()],
        vec![PhysicalModel::default()],
    );
    let id = grid.jobs()[0].id.clone();
    let report = qccd::Toolflow::new(presets::l6(6), PhysicalModel::default())
        .run(&generators::bv(&[true; 6]))
        .expect("fits");
    let ok: JobOutcome = Ok(report);
    let err: JobOutcome = Err("synthetic failure".into());

    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const STORES: usize = 150;
    const LOADS: usize = 150;
    let written = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let (cache, id, ok, err, written) = (&cache, &id, &ok, &err, &written);
            scope.spawn(move || {
                for i in 0..STORES {
                    cache.store(id, if (i + w) % 2 == 0 { ok } else { err });
                    written.store(true, Ordering::Release);
                }
            });
        }
        for _ in 0..READERS {
            let (cache, id, ok, err, written) = (&cache, &id, &ok, &err, &written);
            scope.spawn(move || {
                let mut loads = 0;
                while loads < LOADS {
                    if !written.load(Ordering::Acquire) {
                        std::thread::yield_now();
                        continue;
                    }
                    let loaded = cache.load(id);
                    assert!(
                        loaded.as_ref() == Some(ok) || loaded.as_ref() == Some(err),
                        "corrupt or missing load under concurrent writes: {loaded:?}"
                    );
                    loads += 1;
                }
            });
        }
    });

    // The storm settles into exactly one entry file — no temp litter.
    assert_eq!(cache.len(), 1);
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sharded execution + merge against one shared cache reproduces the
/// unsharded artifact byte for byte, and a premature merge names the
/// missing jobs.
#[test]
fn sharded_spec_runs_plus_merge_match_the_unsharded_artifact() {
    let dir = temp_dir("shard-merge");
    let mut spec = ExperimentSpec::fig6(&[8, 10]);
    spec.circuits.truncate(3);
    spec.name = "fig6-shard-mini".into();
    let unsharded = run_spec(&spec, &Engine::new()).unwrap();
    assert_eq!(unsharded.stats.jobs, 6);

    let cached_engine = Engine::with_options(EngineOptions {
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    });
    // Merging before any shard ran fails, naming every missing job.
    match merge_spec(&spec, &cached_engine).unwrap_err() {
        SpecError::IncompleteCache { missing } => assert_eq!(missing.len(), 6),
        other => panic!("expected IncompleteCache, got {other:?}"),
    }

    let mut executed = 0;
    let mut skipped = 0;
    for k in 0..3 {
        let engine = Engine::with_options(EngineOptions {
            cache_dir: Some(dir.clone()),
            shard: Some(Shard::new(k, 3).unwrap()),
            ..EngineOptions::default()
        });
        let run = run_spec_jobs(&spec, &engine).unwrap();
        assert_eq!(run.stats.cached, 0, "shards own disjoint job sets");
        executed += run.stats.executed;
        skipped += run.stats.skipped;
    }
    assert_eq!(executed, 6, "every job executed exactly once across shards");
    assert_eq!(skipped, 2 * 6, "each shard skipped the other two slices");

    let merged = merge_spec(&spec, &cached_engine).unwrap();
    assert_eq!(merged.stats.executed, 0, "merge only reads the cache");
    assert_eq!(
        serde_json::to_string_pretty(&merged.artifact).unwrap(),
        serde_json::to_string_pretty(&unsharded.artifact).unwrap(),
        "merged artifact drifted from the single-process run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shard partitioning: for random grids and M ∈ {2, 3, 5}, the M
    /// shards are pairwise disjoint, their union is exactly `jobs()`,
    /// and the assignment is stable across grid constructions and
    /// unchanged for surviving jobs when the grid is edited.
    #[test]
    fn shard_partition_is_disjoint_exhaustive_and_stable(
        n_circuits in 1usize..4,
        n_devices in 1usize..3,
        n_configs in 1usize..3,
        seed in 0u64..1000,
    ) {
        let circuits: Vec<_> = (0..n_circuits)
            .map(|i| generators::random_circuit(5 + i as u32, 20, 0.5, seed + i as u64))
            .collect();
        let devices: Vec<_> = (0..n_devices).map(|i| presets::l6(6 + 2 * i as u32)).collect();
        let configs: Vec<_> = policy_grid(2).into_iter().take(n_configs).collect();
        let models = vec![PhysicalModel::default()];
        let grid = JobGrid::from_axes(
            circuits.clone(), devices.clone(), configs.clone(), models.clone());

        for m in [2usize, 3, 5] {
            let shards: Vec<Shard> = (0..m).map(|k| Shard::new(k, m).unwrap()).collect();
            for job in grid.jobs() {
                let owners = shards.iter().filter(|s| s.owns(&job.id)).count();
                prop_assert_eq!(owners, 1, "job {} must have exactly one owner", job.id);
                prop_assert!(job.id.shard_of(m) < m);
            }
            // Stable across constructions: the same axes give the same
            // ids, hence the same owners.
            let rebuilt = JobGrid::from_axes(
                circuits.clone(), devices.clone(), configs.clone(), models.clone());
            for (a, b) in grid.jobs().iter().zip(rebuilt.jobs()) {
                prop_assert_eq!(&a.id, &b.id);
                prop_assert_eq!(a.id.shard_of(m), b.id.shard_of(m));
            }
            // Stable under grid edits: the assignment hashes the job id,
            // not its position, so adding an axis entry never moves an
            // existing job to a different shard.
            let mut extended = circuits.clone();
            extended.push(generators::qft(5));
            let edited = JobGrid::from_axes(
                extended, devices.clone(), configs.clone(), models.clone());
            for job in grid.jobs() {
                let owner_before = job.id.shard_of(m);
                let survived = edited
                    .jobs()
                    .iter()
                    .find(|j| j.id == job.id)
                    .expect("original job survives the edit");
                prop_assert_eq!(owner_before, survived.id.shard_of(m));
            }
        }
    }

    /// A spec-shaped grid over (circuit × capacities) reproduces
    /// `capacity_sweep` cell for cell: same successful reports, same
    /// error text for infeasible points.
    #[test]
    fn grid_reproduces_capacity_sweep_cell_for_cell(
        n in 4u32..30,
        ops in 1usize..120,
        seed in 0u64..1000,
        cap_lo in 3u32..9,
        cap_n in 1usize..5,
    ) {
        // A small ascending capacity axis (the vendored proptest has no
        // collection strategies; derive the vector from two scalars).
        let caps: Vec<u32> = (0..cap_n as u32).map(|i| cap_lo + 2 * i).collect();
        let circuit = generators::random_circuit(n, ops, 0.5, seed);
        let config = CompilerConfig::default();
        let model = PhysicalModel::default();

        let legacy = capacity_sweep(&circuit, &caps, &model, &config, presets::l6);

        let grid = JobGrid::from_axes(
            vec![circuit.clone()],
            caps.iter().map(|&c| presets::l6(c)).collect(),
            vec![config],
            vec![model],
        );
        let run = Engine::new().run(&grid);

        for (k, point) in legacy.iter().enumerate() {
            let engine_outcome = run.results.outcome(&grid, 0, k, 0, 0);
            match (&point.outcome, engine_outcome) {
                (Ok(expected), Ok(got)) => prop_assert_eq!(expected, got),
                (Err(expected), Err(got)) => {
                    prop_assert_eq!(&expected.to_string(), got)
                }
                (expected, got) => prop_assert!(
                    false,
                    "capacity {}: legacy {:?} vs engine {:?}",
                    point.capacity, expected, got
                ),
            }
        }
    }

    /// A spec-shaped grid over the 16-combination policy axis
    /// reproduces `policy_sweep` cell for cell.
    #[test]
    fn grid_reproduces_policy_sweep_cell_for_cell(
        n in 4u32..22,
        ops in 1usize..100,
        seed in 0u64..1000,
    ) {
        let circuit = generators::random_circuit(n, ops, 0.5, seed);
        let device = presets::g2x3(8);
        let model = PhysicalModel::default();
        let configs = policy_grid(2);

        let legacy = policy_sweep(&circuit, &device, &model, &configs);

        let grid = JobGrid::from_axes(
            vec![circuit.clone()],
            vec![device.clone()],
            configs.clone(),
            vec![model],
        );
        let run = Engine::new().run(&grid);

        for (g, point) in legacy.iter().enumerate() {
            let engine_outcome = run.results.outcome(&grid, 0, 0, g, 0);
            match (&point.outcome, engine_outcome) {
                (Ok(expected), Ok(got)) => prop_assert_eq!(expected, got),
                (Err(expected), Err(got)) => {
                    prop_assert_eq!(&expected.to_string(), got)
                }
                (expected, got) => prop_assert!(
                    false,
                    "combo {}: legacy {:?} vs engine {:?}",
                    point.config.policy_label(), expected, got
                ),
            }
        }
    }
}
