//! Engine/legacy equivalence and cache behavior of the declarative
//! experiment engine.
//!
//! The redesign's correctness contract: an [`ExperimentSpec`]-expanded
//! job grid must reproduce the legacy sweep helpers cell for cell, a
//! repeated run against the same cache must execute zero jobs while
//! producing byte-identical artifacts, and the committed
//! `examples/experiments/*.json` presets must drive the engine to the
//! same artifacts as the figure modules.

use proptest::prelude::*;
use qccd::engine::{run_spec, Engine, EngineOptions, ExperimentSpec, JobGrid, Projection};
use qccd::sweep::{capacity_sweep, policy_grid, policy_sweep};
use qccd_circuit::generators;
use qccd_compiler::CompilerConfig;
use qccd_device::presets;
use qccd_physics::PhysicalModel;
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qccd-engine-suite-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every committed experiment spec parses, round-trips, and expands.
#[test]
fn committed_experiment_specs_load_and_expand() {
    let quick = qccd::experiments::QUICK_CAPACITIES;
    for (rel, expected_jobs) in [
        ("examples/experiments/table1.json", 0),
        ("examples/experiments/table2.json", 0),
        // The files pin the full 11-capacity paper sweeps.
        ("examples/experiments/fig6.json", 6 * 11),
        ("examples/experiments/fig7.json", 6 * 22),
        ("examples/experiments/fig8.json", 6 * 11 * 2 * 4),
        ("examples/experiments/ablation_buffer.json", 5),
        ("examples/experiments/ablation_heating.json", 11 * 2),
        ("examples/experiments/ablation_junction.json", 2 * 4),
        ("examples/experiments/ablation_device_size.json", 6),
        ("examples/experiments/ablation_policy.json", 2 * 16),
    ] {
        let spec =
            ExperimentSpec::from_file(repo_path(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
        let grid = spec.expand().unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert_eq!(grid.job_count(), expected_jobs, "{rel} job grid size");
        // Round trip: serialization is the canonical pinned form.
        let json = serde_json::to_string_pretty(&spec).unwrap();
        assert_eq!(ExperimentSpec::from_json(&json).unwrap(), spec, "{rel}");
    }
    let _ = quick;
}

/// The committed fig6 spec, capped to the quick capacities, reproduces
/// the committed golden bytes through the generic `run --spec` path.
#[test]
fn quick_capped_fig6_spec_reproduces_the_golden_bytes() {
    let mut spec = ExperimentSpec::from_file(repo_path("examples/experiments/fig6.json")).unwrap();
    spec.capacities = qccd::experiments::QUICK_CAPACITIES.to_vec();
    let run = run_spec(&spec, &Engine::new()).unwrap();
    let produced = serde_json::to_string_pretty(&run.artifact).unwrap();
    let golden = std::fs::read_to_string(repo_path("tests/goldens/fig6_quick.json")).unwrap();
    assert_eq!(produced, golden, "spec-driven fig6 drifted from the golden");
}

/// Cache acceptance: the second run of a spec executes zero jobs and
/// emits byte-identical artifact JSON.
#[test]
fn second_spec_run_is_all_cache_hits_with_identical_bytes() {
    let dir = temp_dir("cache-hit");
    let engine = Engine::with_options(EngineOptions {
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    });
    let mut spec = ExperimentSpec::fig8(&[8]);
    spec.circuits.truncate(2);
    spec.name = "fig8-mini".into();

    let first = run_spec(&spec, &engine).unwrap();
    assert_eq!(first.stats.executed, first.stats.jobs);
    assert_eq!(first.stats.jobs, 2 * 2 * 4);

    let second = run_spec(&spec, &engine).unwrap();
    assert_eq!(second.stats.executed, 0, "second run must execute nothing");
    assert_eq!(second.stats.cached, second.stats.jobs);
    assert_eq!(
        serde_json::to_string_pretty(&first.artifact).unwrap(),
        serde_json::to_string_pretty(&second.artifact).unwrap(),
        "cached artifact bytes drifted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A projection change alone (same axes) is pure post-processing: the
/// cache carries over across different projections of one grid.
#[test]
fn cache_is_shared_across_projections_of_the_same_grid() {
    let dir = temp_dir("cross-projection");
    let engine = Engine::with_options(EngineOptions {
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    });
    let mut spec = ExperimentSpec::fig6(&[8]);
    spec.circuits.truncate(1);
    let first = run_spec(&spec, &engine).unwrap();
    assert_eq!(first.stats.executed, 1);

    spec.projection = Projection::Cells;
    let second = run_spec(&spec, &engine).unwrap();
    assert_eq!(second.stats.executed, 0);
    assert!(second.artifact.as_table().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A spec-shaped grid over (circuit × capacities) reproduces
    /// `capacity_sweep` cell for cell: same successful reports, same
    /// error text for infeasible points.
    #[test]
    fn grid_reproduces_capacity_sweep_cell_for_cell(
        n in 4u32..30,
        ops in 1usize..120,
        seed in 0u64..1000,
        cap_lo in 3u32..9,
        cap_n in 1usize..5,
    ) {
        // A small ascending capacity axis (the vendored proptest has no
        // collection strategies; derive the vector from two scalars).
        let caps: Vec<u32> = (0..cap_n as u32).map(|i| cap_lo + 2 * i).collect();
        let circuit = generators::random_circuit(n, ops, 0.5, seed);
        let config = CompilerConfig::default();
        let model = PhysicalModel::default();

        let legacy = capacity_sweep(&circuit, &caps, &model, &config, presets::l6);

        let grid = JobGrid::from_axes(
            vec![circuit.clone()],
            caps.iter().map(|&c| presets::l6(c)).collect(),
            vec![config],
            vec![model],
        );
        let run = Engine::new().run(&grid);

        for (k, point) in legacy.iter().enumerate() {
            let engine_outcome = run.results.outcome(&grid, 0, k, 0, 0);
            match (&point.outcome, engine_outcome) {
                (Ok(expected), Ok(got)) => prop_assert_eq!(expected, got),
                (Err(expected), Err(got)) => {
                    prop_assert_eq!(&expected.to_string(), got)
                }
                (expected, got) => prop_assert!(
                    false,
                    "capacity {}: legacy {:?} vs engine {:?}",
                    point.capacity, expected, got
                ),
            }
        }
    }

    /// A spec-shaped grid over the 16-combination policy axis
    /// reproduces `policy_sweep` cell for cell.
    #[test]
    fn grid_reproduces_policy_sweep_cell_for_cell(
        n in 4u32..22,
        ops in 1usize..100,
        seed in 0u64..1000,
    ) {
        let circuit = generators::random_circuit(n, ops, 0.5, seed);
        let device = presets::g2x3(8);
        let model = PhysicalModel::default();
        let configs = policy_grid(2);

        let legacy = policy_sweep(&circuit, &device, &model, &configs);

        let grid = JobGrid::from_axes(
            vec![circuit.clone()],
            vec![device.clone()],
            configs.clone(),
            vec![model],
        );
        let run = Engine::new().run(&grid);

        for (g, point) in legacy.iter().enumerate() {
            let engine_outcome = run.results.outcome(&grid, 0, 0, g, 0);
            match (&point.outcome, engine_outcome) {
                (Ok(expected), Ok(got)) => prop_assert_eq!(expected, got),
                (Err(expected), Err(got)) => {
                    prop_assert_eq!(&expected.to_string(), got)
                }
                (expected, got) => prop_assert!(
                    false,
                    "combo {}: legacy {:?} vs engine {:?}",
                    point.config.policy_label(), expected, got
                ),
            }
        }
    }
}
