//! Differential suite for the incremental-compilation layer: memoized
//! warm compiles must be byte-identical to cold compiles across the
//! full device × circuit × 16-policy matrix, at the pipeline level and
//! through the engine (stage memo on vs. off, in-memory and via the
//! on-disk stage cache).

use qccd::engine::{Engine, EngineOptions, JobGrid, StageCache};
use qccd::sweep::policy_grid;
use qccd_circuit::{generators, Circuit};
use qccd_compiler::{CompileMemo, CompileMemoRef, Pipeline, StagePersist};
use qccd_device::{presets, Device};
use qccd_physics::PhysicalModel;
use std::sync::Arc;

fn devices() -> Vec<Device> {
    vec![presets::l6(8), presets::g2x3(8)]
}

fn circuits() -> Vec<Circuit> {
    vec![generators::bv(&[true; 8]), generators::qaoa(10, 1, 2)]
}

/// The tentpole contract: for every (device, circuit, policy) cell of
/// the 16-policy matrix, a cold compile, a first memoized compile
/// (filling the stages), and a second memoized compile (serving them)
/// produce byte-identical executables.
#[test]
fn memoized_compiles_are_byte_identical_across_the_policy_matrix() {
    for device in &devices() {
        let memo = CompileMemo::new(device);
        for circuit in &circuits() {
            let memo_ref = CompileMemoRef::for_circuit(&memo, circuit);
            for config in policy_grid(2) {
                let pipeline = Pipeline::from_config(&config);
                let cold = pipeline.compile(circuit, device).unwrap();
                let filling = pipeline
                    .compile_with(circuit, device, Some(memo_ref))
                    .unwrap();
                let warm = pipeline
                    .compile_with(circuit, device, Some(memo_ref))
                    .unwrap();
                let cold_bytes = serde_json::to_string(&cold).unwrap();
                for (label, exe) in [("stage-filling", &filling), ("warm", &warm)] {
                    assert_eq!(
                        cold_bytes,
                        serde_json::to_string(exe).unwrap(),
                        "{label} compile diverged for {} on {} with {}",
                        circuit.name(),
                        device.name(),
                        config.policy_label(),
                    );
                }
            }
        }
        let counters = memo.counters();
        assert!(
            counters.placement_hits > 0 && counters.route_misses > 0,
            "the matrix must actually exercise the memo: {counters:?}"
        );
    }
}

/// The same contract one layer up: an engine run with the stage memo
/// (the default) produces bit-identical outcomes to one without it,
/// over the full matrix as one grid.
#[test]
fn engine_stage_memo_matches_memo_free_run_over_the_matrix() {
    let grid = JobGrid::from_axes(
        circuits(),
        devices(),
        policy_grid(2),
        vec![PhysicalModel::default()],
    );
    assert_eq!(grid.job_count(), 2 * 2 * 16);
    let memoized = Engine::new().run(&grid);
    let memo_free = Engine::with_options(EngineOptions {
        stage_memo: false,
        ..EngineOptions::default()
    })
    .run(&grid);
    assert_eq!(
        memoized.results.job_outcomes(),
        memo_free.results.job_outcomes(),
        "stage-memoized outcomes diverged from the memo-free engine"
    );
    assert!(
        memoized.stats.placement_hits > 0,
        "{}",
        memoized.stats.summary()
    );
    assert_eq!(
        memo_free.stats.placement_hits + memo_free.stats.placement_misses,
        0
    );
}

/// Cross-process warm start: compiles through a fresh memo backed by
/// the stage files of a previous engine run are byte-identical to cold
/// compiles, and serve every placement and route row from disk.
#[test]
fn disk_warmed_compiles_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("qccd-incr-disk-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let device = presets::l6(8);
    let circuit = generators::bv(&[true; 8]);
    let grid = JobGrid::from_axes(
        vec![circuit.clone()],
        vec![device.clone()],
        policy_grid(2),
        vec![PhysicalModel::default()],
    );
    Engine::with_options(EngineOptions {
        cache_dir: Some(dir.clone()),
        ..EngineOptions::default()
    })
    .run(&grid);

    // A second process: fresh memo, same stage directory.
    let stages: Arc<dyn StagePersist> = Arc::new(StageCache::open(dir.join("stages")).unwrap());
    let memo = CompileMemo::with_persist(&device, Some(stages));
    let memo_ref = CompileMemoRef::for_circuit(&memo, &circuit);
    assert_eq!(
        memo.counters().route_misses,
        0,
        "every route row preloads from disk"
    );
    for config in policy_grid(2) {
        let pipeline = Pipeline::from_config(&config);
        let cold = pipeline.compile(&circuit, &device).unwrap();
        let warm = pipeline
            .compile_with(&circuit, &device, Some(memo_ref))
            .unwrap();
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap(),
            "disk-warmed compile diverged with {}",
            config.policy_label(),
        );
    }
    assert_eq!(
        memo.counters().placement_misses,
        0,
        "every placement stage loads from the previous run: {:?}",
        memo.counters()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
