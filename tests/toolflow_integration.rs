//! End-to-end integration: every Table II benchmark through the full
//! toolflow on both paper topologies.

use qccd::Toolflow;
use qccd_circuit::generators::Benchmark;
use qccd_device::presets;
use qccd_physics::PhysicalModel;

#[test]
fn full_suite_runs_on_l6_and_g2x3() {
    for bench in Benchmark::ALL {
        let circuit = bench.build();
        for device in [presets::l6(20), presets::g2x3(20)] {
            let name = device.name().to_owned();
            let tf = Toolflow::new(device, PhysicalModel::default());
            let r = tf
                .run(&circuit)
                .unwrap_or_else(|e| panic!("{bench} on {name}: {e}"));
            // Basic sanity on every report.
            assert!(r.total_time_us > 0.0, "{bench}/{name}: no time");
            assert!(
                (0.0..=1.0).contains(&r.fidelity()),
                "{bench}/{name}: fidelity {}",
                r.fidelity()
            );
            assert_eq!(
                r.counts.two_qubit_gates,
                circuit.two_qubit_gate_count(),
                "{bench}/{name}: dropped gates"
            );
            assert_eq!(
                r.counts.measurements,
                circuit.measure_count(),
                "{bench}/{name}: dropped measurements"
            );
            assert_eq!(r.counts.splits, r.counts.merges, "{bench}/{name}");
            assert_eq!(r.counts.splits, r.counts.moves, "{bench}/{name}");
            assert!(
                r.time.compute_us + r.time.communication_us <= r.total_time_us + 1e-6,
                "{bench}/{name}: spans exceed makespan"
            );
        }
    }
}

#[test]
fn toolflow_is_deterministic_end_to_end() {
    let circuit = Benchmark::Adder.build();
    let run = || {
        Toolflow::new(presets::l6(18), PhysicalModel::default())
            .run(&circuit)
            .expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn grid_uses_junctions_linear_does_not() {
    let circuit = Benchmark::SquareRoot.build();
    let linear = Toolflow::new(presets::l6(20), PhysicalModel::default())
        .run(&circuit)
        .expect("linear runs");
    let grid = Toolflow::new(presets::g2x3(20), PhysicalModel::default())
        .run(&circuit)
        .expect("grid runs");
    assert_eq!(linear.counts.junction_crossings, 0);
    assert!(grid.counts.junction_crossings > 0);
}

#[test]
fn infeasible_capacity_fails_cleanly() {
    // SquareRoot needs 78 qubits; L6(12) holds 72.
    let circuit = Benchmark::SquareRoot.build();
    let err = Toolflow::new(presets::l6(12), PhysicalModel::default())
        .run(&circuit)
        .unwrap_err();
    assert!(err.to_string().contains("78"));
}
